// Reduced-precision numerics for replay storage and accelerator emulation.
//
// The paper's accelerators do not compute in fp32: the ZCU102 design uses
// 16-bit floating point and the EdgeTPU study uses Block Floating Point
// (BFP). This module provides bit-exact software emulation of those formats
// plus int8 affine quantisation, so that
//   * replay buffers can store latents at 2x-4x density (the same number of
//     samples in half/quarter the SRAM — or 2x-4x the samples in the same
//     budget), and
//   * the numerical effect of low-precision storage on continual-learning
//     accuracy can be measured (bench_ablation_precision).
//
// All conversions are value-semantic and deterministic (round-to-nearest-
// even for fp16, shared-exponent truncation for BFP, nearest for int8).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace cham::quant {

// ------------------------------------------------------------------ fp16

// IEEE 754 binary16 conversion (round-to-nearest-even, with denormal and
// infinity handling). Bit-exact with hardware half-precision casts.
uint16_t fp32_to_fp16_bits(float value);
float fp16_bits_to_fp32(uint16_t bits);

// Round-trips a value through fp16 (the storage error of a half buffer).
inline float fp16_round_trip(float value) {
  return fp16_bits_to_fp32(fp32_to_fp16_bits(value));
}

// ------------------------------------------------------------------ int8

// Affine (asymmetric) int8 quantisation parameters for a data block.
struct Int8Params {
  float scale = 1.0f;
  int32_t zero_point = 0;
};

// Chooses scale/zero-point covering [min, max] of the span (never empty).
Int8Params choose_int8_params(std::span<const float> values);

int8_t quantize_int8(float value, const Int8Params& p);
float dequantize_int8(int8_t q, const Int8Params& p);

// ------------------------------------------------------------------- BFP

// Block Floating Point: a block of mantissas sharing one exponent — the
// datatype of the uSystolic EdgeTPU study the paper uses. `mantissa_bits`
// includes the sign (e.g. 8 -> int8 mantissas).
struct BfpBlock {
  int8_t shared_exponent = 0;        // power-of-two scale
  std::vector<int8_t> mantissas;     // two's-complement
};

BfpBlock bfp_encode(std::span<const float> values, int mantissa_bits = 8);
void bfp_decode(const BfpBlock& block, int mantissa_bits,
                std::span<float> out);

// --------------------------------------------------------------- codecs

// Storage precision for a replay buffer.
enum class Precision : uint8_t {
  kFp32,
  kFp16,
  kBfp8,   // 8-bit mantissa, 16-element blocks
  kInt8,   // per-tensor affine
};

const char* precision_name(Precision p);

// Bytes needed to store `numel` floats at a precision (including per-block
// metadata for BFP and the affine params for int8).
int64_t storage_bytes(Precision p, int64_t numel);

// An encoded latent: opaque bytes plus the info needed to decode.
struct EncodedTensor {
  Precision precision = Precision::kFp32;
  Shape shape;
  std::vector<uint8_t> bytes;

  int64_t size_bytes() const {
    return static_cast<int64_t>(bytes.size());
  }
};

// Encodes/decodes a tensor at the given precision. Round-tripping through
// kFp32 is lossless; the other formats introduce their characteristic
// quantisation error.
EncodedTensor encode(const Tensor& t, Precision p);
Tensor decode(const EncodedTensor& e);

// Max absolute round-trip error over a tensor (diagnostics / tests).
double round_trip_error(const Tensor& t, Precision p);

}  // namespace cham::quant
