#include "tensor/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace cham {
namespace {

// True while this thread is executing a parallel_for body; nested regions
// run inline so kernels freely compose (e.g. a parallel conv batch loop
// calling the parallel gemm).
thread_local bool t_in_parallel = false;

int clamp_threads(long n) {
  if (n < 1) return 1;
  if (n > 256) return 256;
  return static_cast<int>(n);
}

int default_threads() {
  if (const char* env = std::getenv("CHAM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return clamp_threads(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return clamp_threads(hc == 0 ? 1 : static_cast<long>(hc));
}

// One parallel region at a time. Worker i always executes chunk i + 1 of the
// static partition (the calling thread takes chunk 0), so the work an output
// element receives never depends on scheduling — only on (range, threads).
class Pool {
 public:
  static Pool& instance() {
    // Intentionally leaked: detached workers block on the pool's condition
    // variables for the process lifetime, so running the destructor at exit
    // would tear the primitives down under them.
    static Pool* pool = new Pool();  // cham-lint: allow(naked-new)
    return *pool;
  }

  void set_size(int n) {
    std::lock_guard<std::mutex> lock(api_mutex_);
    target_size_ = n;
  }

  int size() {
    std::lock_guard<std::mutex> lock(api_mutex_);
    return target_size_;
  }

  void run(int64_t begin, int64_t end, detail::ChunkFn fn, void* ctx,
           int64_t grain) {
    const int64_t n = end - begin;
    if (n <= 0) return;
    if (t_in_parallel) {  // nested region: already inside a worker chunk
      fn(ctx, begin, end);
      return;
    }
    std::lock_guard<std::mutex> lock(api_mutex_);
    const int chunks = static_cast<int>(
        std::min<int64_t>(target_size_, (n + grain - 1) / grain));
    if (chunks <= 1) {
      t_in_parallel = true;
      fn(ctx, begin, end);
      t_in_parallel = false;
      return;
    }
    ensure_workers(chunks - 1);
    {
      std::lock_guard<std::mutex> jl(job_mutex_);
      job_fn_ = fn;
      job_ctx_ = ctx;
      job_begin_ = begin;
      job_n_ = n;
      job_chunks_ = chunks;
      pending_.store(chunks, std::memory_order_release);
      ++job_id_;
    }
    job_cv_.notify_all();
    run_chunk(0);
    std::unique_lock<std::mutex> dl(done_mutex_);
    done_cv_.wait(dl,
                  [&] { return pending_.load(std::memory_order_acquire) == 0; });
  }

 private:
  Pool() = default;

  void ensure_workers(int n) {
    while (static_cast<int>(workers_.size()) < n) {
      const int index = static_cast<int>(workers_.size());
      workers_.emplace_back([this, index] { worker_loop(index); });
      workers_.back().detach();
    }
  }

  void worker_loop(int index) {
    uint64_t seen_job = 0;
    for (;;) {
      int chunks;
      {
        std::unique_lock<std::mutex> jl(job_mutex_);
        job_cv_.wait(jl, [&] { return job_id_ != seen_job; });
        seen_job = job_id_;
        chunks = job_chunks_;
      }
      if (index + 1 < chunks) run_chunk(index + 1);
    }
  }

  void run_chunk(int c) {
    const auto [b, e] = detail::static_chunk(job_n_, job_chunks_, c);
    t_in_parallel = true;
    job_fn_(job_ctx_, job_begin_ + b, job_begin_ + e);
    t_in_parallel = false;
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> dl(done_mutex_);
      done_cv_.notify_all();
    }
  }

  std::mutex api_mutex_;  // serialises parallel regions and resizes
  int target_size_ = default_threads();
  std::vector<std::thread> workers_;

  std::mutex job_mutex_;
  std::condition_variable job_cv_;
  uint64_t job_id_ = 0;
  detail::ChunkFn job_fn_ = nullptr;
  void* job_ctx_ = nullptr;
  int64_t job_begin_ = 0;
  int64_t job_n_ = 0;
  int job_chunks_ = 0;

  std::atomic<int> pending_{0};
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
};

}  // namespace

namespace detail {
Chunk static_chunk(int64_t n, int chunks, int c) {
  const int64_t base = n / chunks;
  const int64_t extra = n % chunks;
  const int64_t begin = c * base + std::min<int64_t>(c, extra);
  const int64_t len = base + (c < extra ? 1 : 0);
  return {begin, begin + len};
}
}  // namespace detail

void set_num_threads(int n) { Pool::instance().set_size(clamp_threads(n)); }

int num_threads() { return Pool::instance().size(); }

namespace detail {
void parallel_run(int64_t begin, int64_t end, ChunkFn fn, void* ctx,
                  int64_t grain) {
  Pool::instance().run(begin, end, fn, ctx, grain < 1 ? 1 : grain);
}
}  // namespace detail

}  // namespace cham
