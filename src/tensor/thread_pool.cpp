#include "tensor/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace cham {
namespace {

// True while this thread is executing a parallel_for body; nested regions
// run inline so kernels freely compose (e.g. a parallel conv batch loop
// calling the parallel gemm).
thread_local bool t_in_parallel = false;

// Dispatch accounting (relaxed: counters only, never synchronisation).
std::atomic<uint64_t> g_inline_runs{0};
std::atomic<uint64_t> g_pool_dispatches{0};

int clamp_threads(long n) {
  if (n < 1) return 1;
  if (n > 256) return 256;
  return static_cast<int>(n);
}

int default_threads() {
  if (const char* env = std::getenv("CHAM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return clamp_threads(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return clamp_threads(hc == 0 ? 1 : static_cast<long>(hc));
}

// One parallel region at a time. Worker i always executes chunk i + 1 of the
// static partition (the calling thread takes chunk 0), so the work an output
// element receives never depends on scheduling — only on (range, threads).
class Pool {
 public:
  static Pool& instance() {
    // Intentionally leaked: detached workers block on the pool's condition
    // variables for the process lifetime, so running the destructor at exit
    // would tear the primitives down under them.
    static Pool* pool = new Pool();  // cham-lint: allow(naked-new)
    return *pool;
  }

  void set_size(int n) CHAM_EXCLUDES(api_mutex_) {
    util::MutexLock lock(api_mutex_);
    target_size_ = n;
    size_hint_.store(n, std::memory_order_relaxed);
  }

  int size() CHAM_EXCLUDES(api_mutex_) {
    util::MutexLock lock(api_mutex_);
    return target_size_;
  }

  void run(int64_t begin, int64_t end, detail::ChunkFn fn, void* ctx,
           int64_t grain) CHAM_EXCLUDES(api_mutex_, job_mutex_, done_mutex_) {
    const int64_t n = end - begin;
    if (n <= 0) return;
    if (t_in_parallel) {  // nested region: already inside a worker chunk
      g_inline_runs.fetch_add(1, std::memory_order_relaxed);
      fn(ctx, begin, end);
      return;
    }
    // Lock-free inline fast path: a sub-grain range (or a 1-thread pool)
    // always resolves to a single chunk, so it never needs the pool — run
    // it on the calling thread without touching api_mutex_ or the condvars.
    // size_hint_ is a relaxed mirror of target_size_; a stale read only
    // shifts where the 1-chunk decision is made, not what it computes,
    // because the locked path below re-derives chunks from target_size_.
    // This is what lets many serve shards issue small head GEMMs
    // concurrently instead of convoying on the pool's API mutex.
    if (n <= grain || size_hint_.load(std::memory_order_relaxed) <= 1) {
      g_inline_runs.fetch_add(1, std::memory_order_relaxed);
      t_in_parallel = true;
      fn(ctx, begin, end);
      t_in_parallel = false;
      return;
    }
    util::MutexLock lock(api_mutex_);
    const int chunks = static_cast<int>(
        std::min<int64_t>(target_size_, (n + grain - 1) / grain));
    if (chunks <= 1) {
      g_inline_runs.fetch_add(1, std::memory_order_relaxed);
      t_in_parallel = true;
      fn(ctx, begin, end);
      t_in_parallel = false;
      return;
    }
    g_pool_dispatches.fetch_add(1, std::memory_order_relaxed);
    ensure_workers(chunks - 1);
    {
      util::MutexLock jl(job_mutex_);
      job_fn_ = fn;
      job_ctx_ = ctx;
      job_begin_ = begin;
      job_n_ = n;
      job_chunks_ = chunks;
      pending_.store(chunks, std::memory_order_release);
      ++job_id_;
    }
    job_cv_.notify_all();
    run_chunk(0);
    util::MutexLock dl(done_mutex_);
    // The predicate reads only the atomic countdown (no guarded state); the
    // acquire load pairs with the workers' acq_rel fetch_sub so every chunk's
    // writes are visible once the wait returns (ordering policy case 2,
    // util/sync.h).
    done_cv_.wait(dl,
                  [&] { return pending_.load(std::memory_order_acquire) == 0; });
  }

 private:
  Pool() = default;

  void ensure_workers(int n) CHAM_REQUIRES(api_mutex_) {
    while (static_cast<int>(workers_.size()) < n) {
      const int index = static_cast<int>(workers_.size());
      workers_.emplace_back([this, index] { worker_loop(index); });
      workers_.back().detach();
    }
  }

  void worker_loop(int index) CHAM_EXCLUDES(job_mutex_, done_mutex_) {
    uint64_t seen_job = 0;
    for (;;) {
      int chunks;
      {
        util::MutexLock jl(job_mutex_);
        job_cv_.wait(jl, [&]() CHAM_REQUIRES(job_mutex_) {
          return job_id_ != seen_job;
        });
        seen_job = job_id_;
        chunks = job_chunks_;
      }
      if (index + 1 < chunks) run_chunk(index + 1);
    }
  }

  // Reads the job_mutex_-guarded job fields WITHOUT the lock. The protocol
  // that replaces it: run() publishes the fields and pending_ = chunks under
  // job_mutex_ before notifying; a worker enters here only after observing
  // the new job_id_ under job_mutex_ (mutex hand-off publishes the fields),
  // and run() itself holds api_mutex_, so no new job can overwrite them
  // until every chunk has fetch_sub'd pending_ to zero and the acquire wait
  // in run() has returned.
  void run_chunk(int c) CHAM_NO_THREAD_SAFETY_ANALYSIS {
    const auto [b, e] = detail::static_chunk(job_n_, job_chunks_, c);
    t_in_parallel = true;
    job_fn_(job_ctx_, job_begin_ + b, job_begin_ + e);
    t_in_parallel = false;
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      util::MutexLock dl(done_mutex_);
      done_cv_.notify_all();
    }
  }

  // Serialises parallel regions and resizes; held by run() for the whole
  // region, including the completion wait.
  util::Mutex api_mutex_ CHAM_ACQUIRED_BEFORE(job_mutex_, done_mutex_);
  int target_size_ CHAM_GUARDED_BY(api_mutex_) = default_threads();
  // Relaxed mirror of target_size_ read by run()'s pre-lock fast path.
  std::atomic<int> size_hint_{default_threads()};
  std::vector<std::thread> workers_ CHAM_GUARDED_BY(api_mutex_);

  util::Mutex job_mutex_;
  util::CondVar job_cv_;
  uint64_t job_id_ CHAM_GUARDED_BY(job_mutex_) = 0;
  detail::ChunkFn job_fn_ CHAM_GUARDED_BY(job_mutex_) = nullptr;
  void* job_ctx_ CHAM_GUARDED_BY(job_mutex_) = nullptr;
  int64_t job_begin_ CHAM_GUARDED_BY(job_mutex_) = 0;
  int64_t job_n_ CHAM_GUARDED_BY(job_mutex_) = 0;
  int job_chunks_ CHAM_GUARDED_BY(job_mutex_) = 0;

  // Completion countdown: workers fetch_sub(acq_rel) after their chunk's
  // writes, run() loads acquire (ordering policy case 2, util/sync.h).
  std::atomic<int> pending_{0};
  util::Mutex done_mutex_;
  util::CondVar done_cv_;
};

}  // namespace

namespace detail {
uint64_t pool_inline_runs() {
  return g_inline_runs.load(std::memory_order_relaxed);
}

uint64_t pool_dispatches() {
  return g_pool_dispatches.load(std::memory_order_relaxed);
}

Chunk static_chunk(int64_t n, int chunks, int c) {
  const int64_t base = n / chunks;
  const int64_t extra = n % chunks;
  const int64_t begin = c * base + std::min<int64_t>(c, extra);
  const int64_t len = base + (c < extra ? 1 : 0);
  return {begin, begin + len};
}
}  // namespace detail

void set_num_threads(int n) { Pool::instance().set_size(clamp_threads(n)); }

int num_threads() { return Pool::instance().size(); }

namespace detail {
void parallel_run(int64_t begin, int64_t end, ChunkFn fn, void* ctx,
                  int64_t grain) {
  Pool::instance().run(begin, end, fn, ctx, grain < 1 ? 1 : grain);
}
}  // namespace detail

}  // namespace cham
