// im2col / col2im for NCHW convolution lowered to GEMM.
#pragma once

#include <cstdint>

namespace cham {

struct ConvGeometry {
  int64_t in_c = 0, in_h = 0, in_w = 0;
  int64_t kernel = 3;
  int64_t stride = 1;
  int64_t pad = 1;

  int64_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  int64_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  // Rows of the column matrix: one per (c, kh, kw).
  int64_t col_rows() const { return in_c * kernel * kernel; }
  // Cols of the column matrix: one per output pixel.
  int64_t col_cols() const { return out_h() * out_w(); }
};

// Expands one image (C x H x W, contiguous) into `col` of shape
// col_rows() x col_cols(). Out-of-bounds taps are zero.
void im2col(const float* img, const ConvGeometry& g, float* col);

// Transposed scatter: accumulates the column matrix back into an image
// gradient (must be pre-zeroed by the caller).
void col2im(const float* col, const ConvGeometry& g, float* img);

}  // namespace cham
