#include "tensor/workspace.h"

#include <algorithm>
#include <array>
#include <bit>
#include <new>

#include "util/check.h"
#include "util/sync.h"

namespace cham::ws {
namespace {

// ------------------------------------------------------------------ pool

constexpr std::size_t kMinClassBytes = 64;  // smallest size class (2^6)
constexpr int kMinClassLog2 = 6;
constexpr int kNumClasses = 42;  // up to 2^47 bytes, far beyond any tensor

int size_class(std::size_t bytes) {
  const std::size_t b = std::max(bytes, kMinClassBytes);
  const int log2 = std::bit_width(b - 1);  // ceil(log2(b))
  return std::max(log2, kMinClassLog2) - kMinClassLog2;
}

std::size_t class_bytes(int cls) {
  return std::size_t{1} << (cls + kMinClassLog2);
}

struct PoolImpl {
  util::Mutex mu;
  std::array<std::vector<void*>, kNumClasses> free_lists CHAM_GUARDED_BY(mu);
  int64_t heap_allocs CHAM_GUARDED_BY(mu) = 0;
  int64_t freelist_hits CHAM_GUARDED_BY(mu) = 0;
  int64_t bytes_in_use CHAM_GUARDED_BY(mu) = 0;
  int64_t high_water CHAM_GUARDED_BY(mu) = 0;
};

PoolImpl& pool() {
  // Intentionally leaked: freed blocks must stay reachable through the
  // freelists for the process lifetime (detached pool workers may release
  // storage at any point), and tearing the lists down at exit would race
  // with them. Reachable-by-design keeps LeakSanitizer quiet.
  static PoolImpl* p = new PoolImpl();  // cham-lint: allow(naked-new)
  return *p;
}

// --------------------------------------------- thread-pinned pool cache
//
// A small per-thread freelist in front of the global pool. Each serve
// shard runs its sessions on one pinned worker thread, so the steady-state
// allocation pattern is thread-periodic: the same activation and scratch
// buffer sizes recycle on the same thread every step. Serving those repeats
// from a thread-local cache makes the hot path lock-free and stops shard
// workers convoying on the global pool mutex.
//
// Accounting: a parked block still counts as in-use in the global gauges
// (it was acquired under p.mu and never globally released); only cache
// overflow and thread exit return blocks to the global freelist. Local
// hits are counted in a relaxed atomic reported as pool_local_hits.

constexpr int kLocalClasses = 17;  // classes up to 4 MiB (2^22 bytes)
constexpr std::size_t kLocalPerClass = 4;

std::atomic<int64_t> g_local_hits{0};

// Trivially-destructible tombstone: once the cache's destructor has run
// (thread exit), later pool calls from this thread — e.g. other TLS
// destructors releasing tensors — must fall through to the global path
// instead of resurrecting the dead cache.
thread_local bool t_cache_dead = false;

struct LocalCache {
  std::array<std::vector<void*>, static_cast<std::size_t>(kLocalClasses)>
      lists;
  ~LocalCache();
};

LocalCache* local_cache() {
  if (t_cache_dead) return nullptr;
  thread_local LocalCache cache;
  return &cache;
}

// --------------------------------------------------------- arena registry

struct ArenaRegistry {
  util::Mutex mu;
  std::vector<Arena*> arenas CHAM_GUARDED_BY(mu);
};

ArenaRegistry& registry() {
  // Leaked for the same reason as the pool: worker-thread arenas outlive
  // static destruction order.
  static ArenaRegistry* r = new ArenaRegistry();  // cham-lint: allow(naked-new)
  return *r;
}

constexpr std::size_t kArenaAlign = 64;
constexpr std::size_t kArenaMinChunk = 1 << 16;  // 64 KiB first chunk

std::size_t align_up(std::size_t n) {
  return (n + kArenaAlign - 1) & ~(kArenaAlign - 1);
}

// Returns one block to the global freelist (the only place cache-held
// blocks give up their in-use accounting).
void global_release(void* ptr, int cls) {
  PoolImpl& p = pool();
  util::MutexLock lock(p.mu);
  p.free_lists[static_cast<std::size_t>(cls)].push_back(ptr);
  p.bytes_in_use -= static_cast<int64_t>(class_bytes(cls));
}

LocalCache::~LocalCache() {
  for (int cls = 0; cls < kLocalClasses; ++cls) {
    for (void* ptr : lists[static_cast<std::size_t>(cls)]) {
      global_release(ptr, cls);
    }
  }
  t_cache_dead = true;
}

}  // namespace

void* pool_acquire(std::size_t bytes) {
  const int cls = size_class(bytes);
  CHAM_CHECK(cls < kNumClasses, "pool_acquire: oversized request of " +
                                    std::to_string(bytes) + " bytes");
  if (cls < kLocalClasses) {
    if (LocalCache* cache = local_cache()) {
      auto& list = cache->lists[static_cast<std::size_t>(cls)];
      if (!list.empty()) {
        void* block = list.back();
        list.pop_back();
        g_local_hits.fetch_add(1, std::memory_order_relaxed);
        return block;
      }
    }
  }
  const std::size_t cap = class_bytes(cls);
  PoolImpl& p = pool();
  void* block = nullptr;
  {
    util::MutexLock lock(p.mu);
    auto& list = p.free_lists[static_cast<std::size_t>(cls)];
    if (!list.empty()) {
      block = list.back();
      list.pop_back();
      ++p.freelist_hits;
    } else {
      ++p.heap_allocs;
    }
    p.bytes_in_use += static_cast<int64_t>(cap);
    p.high_water = std::max(p.high_water, p.bytes_in_use);
  }
  if (block == nullptr) {
    block = ::operator new(cap, std::align_val_t{kArenaAlign});
  }
  return block;
}

void pool_release(void* ptr, std::size_t bytes) {
  if (ptr == nullptr) return;
  const int cls = size_class(bytes);
  if (cls < kLocalClasses) {
    if (LocalCache* cache = local_cache()) {
      auto& list = cache->lists[static_cast<std::size_t>(cls)];
      if (list.size() < kLocalPerClass) {
        list.push_back(ptr);
        return;
      }
    }
  }
  global_release(ptr, cls);
}

// ------------------------------------------------------------------ arena

Arena& Arena::local() {
  thread_local Arena arena;
  return arena;
}

Arena::Arena() {
  ArenaRegistry& r = registry();
  util::MutexLock lock(r.mu);
  r.arenas.push_back(this);
}

Arena::~Arena() {
  ArenaRegistry& r = registry();
  util::MutexLock lock(r.mu);
  std::erase(r.arenas, this);
}

void Arena::add_chunk(std::size_t min_bytes) {
  Chunk c;
  const std::size_t last_cap = chunks_.empty() ? 0 : chunks_.back().cap;
  c.cap = std::max({align_up(min_bytes), 2 * last_cap, kArenaMinChunk});
  c.raw.resize(c.cap + kArenaAlign);
  const auto addr = reinterpret_cast<std::uintptr_t>(c.raw.data());
  const std::uintptr_t aligned = (addr + kArenaAlign - 1) & ~(kArenaAlign - 1);
  c.base = c.raw.data() + (aligned - addr);
  c.used = 0;
  reserved_.fetch_add(c.cap, std::memory_order_relaxed);
  chunks_.push_back(std::move(c));
}

float* Arena::alloc_floats(std::size_t n) {
  const std::size_t bytes = align_up(std::max<std::size_t>(n, 1) * sizeof(float));
  // Fully idle with fragmented chunks: consolidate into one block sized for
  // the high-water mark, so the steady state bumps inside a single chunk.
  if (active_ == 0 && chunk_used_ == 0 && chunks_.size() > 1) {
    const std::size_t want = std::max(
        align_up(high_water_.load(std::memory_order_relaxed)), bytes);
    chunks_.clear();
    reserved_.store(0, std::memory_order_relaxed);
    add_chunk(want);
  }
  while (active_ < chunks_.size() && chunk_used_ + bytes > chunks_[active_].cap) {
    chunks_[active_].used = chunk_used_;
    ++active_;
    chunk_used_ = 0;
  }
  if (active_ == chunks_.size()) add_chunk(bytes);
  float* out = reinterpret_cast<float*>(chunks_[active_].base + chunk_used_);
  chunk_used_ += bytes;
  chunks_[active_].used = chunk_used_;
  // Single-writer max; relaxed load+store is race-free because only the
  // owner thread writes (ordering policy case 3, util/sync.h).
  const std::size_t live = live_bytes();
  if (live > high_water_.load(std::memory_order_relaxed)) {
    high_water_.store(live, std::memory_order_relaxed);
  }
  return out;
}

void Arena::rewind(Mark m) {
  CHAM_DCHECK(m.chunk <= active_, "Arena::rewind to a future mark");
  for (std::size_t i = m.chunk + 1; i <= active_ && i < chunks_.size(); ++i) {
    chunks_[i].used = 0;
  }
  active_ = m.chunk;
  chunk_used_ = m.used;
  if (!chunks_.empty()) chunks_[active_].used = chunk_used_;
}

std::size_t Arena::live_bytes() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < active_ && i < chunks_.size(); ++i) {
    total += chunks_[i].used;
  }
  return total + chunk_used_;
}

// ------------------------------------------------------------------ stats

WorkspaceStats stats() {
  WorkspaceStats s;
  {
    PoolImpl& p = pool();
    util::MutexLock lock(p.mu);
    s.pool_heap_allocs = p.heap_allocs;
    s.pool_freelist_hits = p.freelist_hits;
    s.pool_local_hits = g_local_hits.load(std::memory_order_relaxed);
    s.pool_bytes_in_use = p.bytes_in_use;
    s.pool_high_water_bytes = p.high_water;
  }
  {
    ArenaRegistry& r = registry();
    util::MutexLock lock(r.mu);
    for (const Arena* a : r.arenas) {
      s.arena_reserved_bytes += static_cast<int64_t>(a->reserved_bytes());
      s.arena_high_water_bytes =
          std::max(s.arena_high_water_bytes,
                   static_cast<int64_t>(a->high_water_bytes()));
    }
  }
  return s;
}

void reset_stats() {
  {
    PoolImpl& p = pool();
    util::MutexLock lock(p.mu);
    p.heap_allocs = 0;
    p.freelist_hits = 0;
    g_local_hits.store(0, std::memory_order_relaxed);
    p.high_water = p.bytes_in_use;
  }
  {
    ArenaRegistry& r = registry();
    util::MutexLock lock(r.mu);
    for (Arena* a : r.arenas) a->rebase_high_water();
  }
}

}  // namespace cham::ws
