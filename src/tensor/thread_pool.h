// Shared persistent thread pool with deterministic static range partitioning.
//
// Every compute hot path (GEMM, im2col conv, batched elementwise/softmax,
// evaluation) funnels through parallel_for. Determinism contract: the range
// [begin, end) is split into one contiguous chunk per worker by pure
// arithmetic on (range, num_threads), never by load or arrival order, and
// each chunk writes disjoint output. Because the per-element reduction order
// inside a chunk is identical to the serial loop, results are bit-identical
// for every thread count, including 1 (which short-circuits to an inline
// call on the calling thread — the guaranteed serial fallback).
//
// Dispatch is allocation-free: parallel_for erases the callable to a plain
// function pointer plus a context pointer into the caller's frame (the call
// blocks until every chunk finishes, so the frame outlives the workers'
// use). The previous std::function signature heap-allocated a closure per
// kernel launch, which put an allocator lock on the hot path of every GEMM.
//
// Thread count resolution order: set_num_threads(n) > CHAM_THREADS env var >
// std::thread::hardware_concurrency(). Workers are lazily spawned on first
// parallel use and live for the process lifetime.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>

namespace cham {

// Sets the pool size (clamped to [1, 256]). Resizes the pool on the next
// parallel_for. Safe to call between parallel regions, not from inside one.
void set_num_threads(int n);

// Current thread count the next parallel_for will use.
int num_threads();

namespace detail {
// Type-erased chunk body: fn(ctx, chunk_begin, chunk_end).
using ChunkFn = void (*)(void*, int64_t, int64_t);

// The dispatch engine behind parallel_for. `ctx` must stay valid until the
// call returns (it does: the call blocks on chunk completion).
void parallel_run(int64_t begin, int64_t end, ChunkFn fn, void* ctx,
                  int64_t grain);

// Chunk c of `chunks` equal contiguous pieces of an n-element range (the
// first n % chunks pieces get one extra element). Exposed for tests.
struct Chunk {
  int64_t begin, end;
};
Chunk static_chunk(int64_t n, int chunks, int c);

// Monotonic process-lifetime dispatch counters (relaxed loads; benches and
// regression tests read deltas around a workload). A parallel_for call
// increments exactly one of the two: `pool_inline_runs` when it executed on
// the calling thread without waking the pool (sub-grain range, 1-thread
// pool, or nested region resolved before the pool lock), `pool_dispatches`
// when it published a job and signalled workers.
uint64_t pool_inline_runs();
uint64_t pool_dispatches();
}  // namespace detail

// Invokes fn(chunk_begin, chunk_end) over a static partition of [begin, end).
// fn runs on the calling thread when the pool has 1 thread or when the range
// is smaller than `grain` elements; otherwise chunks are handed to the pool
// and the call blocks until every chunk finishes. fn must only write to
// locations owned by its chunk. Exceptions in fn terminate (kernels must not
// throw).
template <typename F>
void parallel_for(int64_t begin, int64_t end, F&& fn, int64_t grain = 1) {
  using Fn = std::remove_reference_t<F>;
  detail::parallel_run(
      begin, end,
      [](void* ctx, int64_t b, int64_t e) { (*static_cast<Fn*>(ctx))(b, e); },
      const_cast<void*>(static_cast<const void*>(std::addressof(fn))), grain);
}

}  // namespace cham
