#include "tensor/gemm.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace cham {
namespace {

// Tile sizes chosen for ~32 KiB L1: a 4x16 register kernel over K-strips.
constexpr int64_t kMc = 64;
constexpr int64_t kNc = 128;
constexpr int64_t kKc = 128;

// Computes a (rows x cols) block of C += A_panel @ B_panel, with
// rows <= kMc, cols <= kNc, depth <= kKc. A is row-major (lda = stride),
// B is row-major (ldb), C row-major (ldc).
void micro_block(int64_t rows, int64_t cols, int64_t depth, const float* a,
                 int64_t lda, const float* b, int64_t ldb, float* c,
                 int64_t ldc) {
  for (int64_t i = 0; i < rows; ++i) {
    const float* ai = a + i * lda;
    float* ci = c + i * ldc;
    for (int64_t p = 0; p < depth; ++p) {
      const float av = ai[p];
      if (av == 0.0f) continue;
      const float* bp = b + p * ldb;
      for (int64_t j = 0; j < cols; ++j) ci[j] += av * bp[j];
    }
  }
}

}  // namespace

void gemm(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
          const float* b, float beta, float* c) {
  // Scale / clear C first.
  if (beta == 0.0f) {
    std::fill(c, c + m * n, 0.0f);
  } else if (beta != 1.0f) {
    for (int64_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;

  std::vector<float> a_scaled;
  const float* a_eff = a;
  if (alpha != 1.0f) {
    // Pre-scaling A keeps the inner loop a pure FMA.
    a_scaled.assign(a, a + m * k);
    for (float& v : a_scaled) v *= alpha;
    a_eff = a_scaled.data();
  }

  for (int64_t pc = 0; pc < k; pc += kKc) {
    const int64_t depth = std::min(kKc, k - pc);
    for (int64_t ic = 0; ic < m; ic += kMc) {
      const int64_t rows = std::min(kMc, m - ic);
      for (int64_t jc = 0; jc < n; jc += kNc) {
        const int64_t cols = std::min(kNc, n - jc);
        micro_block(rows, cols, depth, a_eff + ic * k + pc, k,
                    b + pc * n + jc, n, c + ic * n + jc, n);
      }
    }
  }
}

void gemm_at_b(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
               const float* b, float beta, float* c) {
  if (beta == 0.0f) {
    std::fill(c, c + m * n, 0.0f);
  } else if (beta != 1.0f) {
    for (int64_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  if (alpha == 0.0f) return;
  // C[i][j] += sum_p A[p][i] * B[p][j]; iterate p outermost for row-major
  // streaming of both A and B.
  for (int64_t p = 0; p < k; ++p) {
    const float* ap = a + p * m;
    const float* bp = b + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = alpha * ap[i];
      if (av == 0.0f) continue;
      float* ci = c + i * n;
      for (int64_t j = 0; j < n; ++j) ci[j] += av * bp[j];
    }
  }
}

void gemm_a_bt(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
               const float* b, float beta, float* c) {
  if (beta == 0.0f) {
    std::fill(c, c + m * n, 0.0f);
  } else if (beta != 1.0f) {
    for (int64_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  if (alpha == 0.0f) return;
  // C[i][j] += dot(A row i, B row j): both contiguous dot products.
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* bj = b + j * k;
      double acc = 0;
      for (int64_t p = 0; p < k; ++p) acc += double(ai[p]) * double(bj[p]);
      ci[j] += alpha * static_cast<float>(acc);
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  assert(a.rank() == 2 && b.rank() == 2);
  assert(a.dim(1) == b.dim(0));
  Tensor c({a.dim(0), b.dim(1)});
  gemm(a.dim(0), b.dim(1), a.dim(1), 1.0f, a.data(), b.data(), 0.0f, c.data());
  return c;
}

}  // namespace cham
