#include "tensor/gemm.h"

#include <algorithm>
#include <string>
#include <vector>

#include "tensor/thread_pool.h"
#include "util/check.h"

namespace cham {
namespace {

// Tile sizes chosen for ~32 KiB L1: a 4x16 register kernel over K-strips.
constexpr int64_t kMc = 64;
constexpr int64_t kNc = 128;
constexpr int64_t kKc = 128;

// Minimum rows of C per worker chunk; below this a parallel dispatch costs
// more than the arithmetic it hides.
constexpr int64_t kRowGrain = 8;

// Computes a (rows x cols) block of C += A_panel @ B_panel, with
// rows <= kMc, cols <= kNc, depth <= kKc. A is row-major (lda = stride),
// B is row-major (ldb), C row-major (ldc). alpha is folded into the packed
// A panel, so the kernel is a pure FMA.
void micro_block(int64_t rows, int64_t cols, int64_t depth, const float* a,
                 int64_t lda, const float* b, int64_t ldb, float* c,
                 int64_t ldc) {
  for (int64_t i = 0; i < rows; ++i) {
    const float* ai = a + i * lda;
    float* ci = c + i * ldc;
    for (int64_t p = 0; p < depth; ++p) {
      const float av = ai[p];
      if (av == 0.0f) continue;
      const float* bp = b + p * ldb;
      for (int64_t j = 0; j < cols; ++j) ci[j] += av * bp[j];
    }
  }
}

// Per-worker packing scratch, reused across calls. a_pack holds one
// alpha-scaled kMc x kKc block of A; b_pack holds the full K-strip of B
// (depth x n) so every row block of the chunk streams a contiguous panel.
struct PackBuffers {
  std::vector<float> a_pack, b_pack;
};
PackBuffers& pack_buffers() {
  thread_local PackBuffers bufs;
  return bufs;
}

#if CHAM_CHECKS_LEVEL >= 1
// True if the half-open byte ranges of two operand panels overlap; used for
// the no-alias precondition (C must not alias A or B — the kernels stream A/B
// while writing C in place).
bool ranges_overlap(const float* p, int64_t pn, const float* q, int64_t qn) {
  const auto pb = reinterpret_cast<uintptr_t>(p);
  const auto qb = reinterpret_cast<uintptr_t>(q);
  const auto pe = pb + static_cast<uintptr_t>(pn) * sizeof(float);
  const auto qe = qb + static_cast<uintptr_t>(qn) * sizeof(float);
  return pb < qe && qb < pe;
}

// Shared entry contract of the three kernels: non-negative extents, non-null
// panels for non-empty operands, and C aliasing neither input.
void check_gemm_args(const char* name, int64_t m, int64_t n, int64_t k,
                     const float* a, const float* b, const float* c,
                     int64_t a_elems, int64_t b_elems) {
  CHAM_CHECK(m >= 0 && n >= 0 && k >= 0,
             std::string(name) + ": negative extent m/n/k = " +
                 std::to_string(m) + "/" + std::to_string(n) + "/" +
                 std::to_string(k));
  CHAM_CHECK(c != nullptr || m * n == 0, std::string(name) + ": null C");
  CHAM_CHECK((a != nullptr && b != nullptr) || m * n == 0 || k == 0,
             std::string(name) + ": null A/B panel");
  CHAM_CHECK(!ranges_overlap(a, a_elems, c, m * n) &&
                 !ranges_overlap(b, b_elems, c, m * n),
             std::string(name) + ": C aliases an input panel");
}
#define CHAM_GEMM_CHECK(...) check_gemm_args(__VA_ARGS__)
#else
#define CHAM_GEMM_CHECK(...) ((void)0)
#endif

void scale_c(float* c, int64_t count, float beta) {
  if (beta == 0.0f) {
    std::fill(c, c + count, 0.0f);
  } else if (beta != 1.0f) {
    for (int64_t i = 0; i < count; ++i) c[i] *= beta;
  }
}

}  // namespace

void gemm(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
          const float* b, float beta, float* c) {
  CHAM_GEMM_CHECK("gemm", m, n, k, a, b, c, m * k, k * n);
  if (m <= 0 || n <= 0) return;
  // Each chunk owns a contiguous row range of C: beta pass, then K-strip
  // accumulation. Per element the operations (and their order) are the same
  // for any partition, so results are bit-identical for every thread count.
  parallel_for(
      0, m,
      [&](int64_t i0, int64_t i1) {
        scale_c(c + i0 * n, (i1 - i0) * n, beta);
        if (alpha == 0.0f || k == 0) return;
        PackBuffers& bufs = pack_buffers();
        bufs.a_pack.resize(static_cast<size_t>(kMc * kKc));
        bufs.b_pack.resize(static_cast<size_t>(kKc * n));
        float* a_pack = bufs.a_pack.data();
        float* b_pack = bufs.b_pack.data();
        for (int64_t pc = 0; pc < k; pc += kKc) {
          const int64_t depth = std::min(kKc, k - pc);
          for (int64_t p = 0; p < depth; ++p) {
            const float* src = b + (pc + p) * n;
            std::copy(src, src + n, b_pack + p * n);
          }
          for (int64_t ic = i0; ic < i1; ic += kMc) {
            const int64_t rows = std::min(kMc, i1 - ic);
            // Fold alpha into the pack: replaces the old whole-matrix
            // scale-and-copy of A that ran on every alpha != 1 call.
            for (int64_t i = 0; i < rows; ++i) {
              const float* src = a + (ic + i) * k + pc;
              float* dst = a_pack + i * depth;
              if (alpha == 1.0f) {
                std::copy(src, src + depth, dst);
              } else {
                for (int64_t p = 0; p < depth; ++p) dst[p] = alpha * src[p];
              }
            }
            for (int64_t jc = 0; jc < n; jc += kNc) {
              const int64_t cols = std::min(kNc, n - jc);
              micro_block(rows, cols, depth, a_pack, depth, b_pack + jc, n,
                          c + ic * n + jc, n);
            }
          }
        }
      },
      kRowGrain);
}

void gemm_at_b(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
               const float* b, float beta, float* c) {
  CHAM_GEMM_CHECK("gemm_at_b", m, n, k, a, b, c, k * m, k * n);
  if (m <= 0 || n <= 0) return;
  // C[i][j] += sum_p A[p][i] * B[p][j]. Chunks own row ranges of C; the p
  // loop stays outermost inside a chunk so each element accumulates in the
  // same order as the serial kernel.
  parallel_for(
      0, m,
      [&](int64_t i0, int64_t i1) {
        scale_c(c + i0 * n, (i1 - i0) * n, beta);
        if (alpha == 0.0f) return;
        for (int64_t p = 0; p < k; ++p) {
          const float* ap = a + p * m;
          const float* bp = b + p * n;
          for (int64_t i = i0; i < i1; ++i) {
            const float av = alpha * ap[i];
            if (av == 0.0f) continue;
            float* ci = c + i * n;
            for (int64_t j = 0; j < n; ++j) ci[j] += av * bp[j];
          }
        }
      },
      kRowGrain);
}

void gemm_a_bt(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
               const float* b, float beta, float* c) {
  CHAM_GEMM_CHECK("gemm_a_bt", m, n, k, a, b, c, m * k, n * k);
  if (m <= 0 || n <= 0) return;
  // C[i][j] += dot(A row i, B row j): rows are independent dot products.
  parallel_for(
      0, m,
      [&](int64_t i0, int64_t i1) {
        scale_c(c + i0 * n, (i1 - i0) * n, beta);
        if (alpha == 0.0f) return;
        for (int64_t i = i0; i < i1; ++i) {
          const float* ai = a + i * k;
          float* ci = c + i * n;
          for (int64_t j = 0; j < n; ++j) {
            const float* bj = b + j * k;
            double acc = 0;
            for (int64_t p = 0; p < k; ++p) acc += double(ai[p]) * double(bj[p]);
            ci[j] += alpha * static_cast<float>(acc);
          }
        }
      },
      kRowGrain);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  CHAM_CHECK(a.rank() == 2 && b.rank() == 2,
             "matmul of " + a.shape().to_string() + " @ " +
                 b.shape().to_string());
  CHAM_CHECK(a.dim(1) == b.dim(0),
             "matmul inner-dim mismatch: " + a.shape().to_string() + " @ " +
                 b.shape().to_string());
  Tensor c({a.dim(0), b.dim(1)});
  gemm(a.dim(0), b.dim(1), a.dim(1), 1.0f, a.data(), b.data(), 0.0f, c.data());
  return c;
}

}  // namespace cham
