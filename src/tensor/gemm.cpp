#include "tensor/gemm.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "tensor/thread_pool.h"
#include "tensor/workspace.h"
#include "util/check.h"

// Compile-time SIMD selection. CHAM_SIMD_AVX2 / CHAM_SIMD_NEON are set by
// the CHAM_SIMD CMake option; without an explicit choice the target arch
// decides (the default build compiles with -march=native, so __AVX2__ and
// __FMA__ reflect the host). CHAM_SIMD_GENERIC forces the scalar kernel.
#if defined(CHAM_SIMD_AVX2) ||                                      \
    (!defined(CHAM_SIMD_GENERIC) && !defined(CHAM_SIMD_NEON) &&     \
     defined(__AVX2__) && defined(__FMA__))
#define CHAM_GEMM_USE_AVX2 1
#include <immintrin.h>
#elif defined(CHAM_SIMD_NEON) || \
    (!defined(CHAM_SIMD_GENERIC) && defined(__ARM_NEON))
#define CHAM_GEMM_USE_NEON 1
#include <arm_neon.h>
#endif

#if defined(__GNUC__) || defined(__clang__)
#define CHAM_RESTRICT __restrict__
#else
#define CHAM_RESTRICT
#endif

namespace cham {
namespace {

// One K strip: panels of this depth are packed and streamed through the
// micro-kernel. 256 floats of A rows plus the B panel stay L1/L2-resident
// for the layer shapes in this repo.
constexpr int64_t kKc = 256;

// Wide register tile: 4 rows x 16 cols = 8 YMM accumulators under AVX2.
constexpr int64_t kWideMr = 4;
constexpr int64_t kWideNr = 16;
// Narrow tile for outputs with few columns (classifier heads, n <= 8):
// trades tile width for row depth so the fma chains stay independent.
constexpr int64_t kNarrowMr = 8;
constexpr int64_t kNarrowNr = 4;
// The tile choice depends only on n, never on the thread partition.
constexpr int64_t kNarrowCutoff = 8;

// Minimum rows of C per worker chunk; below this a parallel dispatch costs
// more than the arithmetic it hides.
constexpr int64_t kRowGrain = 8;
// Target flops per worker chunk: small-n GEMMs (head layers, n = 4) get
// proportionally more rows per chunk so dispatch overhead never dominates.
// At 1<<19 a sub-half-MFLOP GEMM (e.g. the 256x4x256 head forward, ~20us
// of arithmetic) gets a grain >= its row count and runs inline on the
// calling thread — the whole dispatch would cost more than it hides.
constexpr int64_t kGrainFlops = int64_t{1} << 19;

int64_t gemm_grain(int64_t n, int64_t k) {
  const int64_t row_flops = 2 * std::max<int64_t>(1, n) * std::max<int64_t>(1, k);
  return std::max(kRowGrain, (kGrainFlops + row_flops - 1) / row_flops);
}

// The one rounding step of the accumulation chain. With hardware fma the
// multiply-add rounds once; the fallback keeps multiply and add as separate
// statements so -ffp-contract cannot fuse them behind our back (contraction
// only applies within a single expression). Every kernel in this file —
// packed, intrinsic, and reference — accumulates through this helper, which
// is what makes them bit-identical to each other.
inline float cham_fma(float a, float b, float c) {
#if defined(__FMA__) || defined(__ARM_FEATURE_FMA) || defined(FP_FAST_FMAF)
  return std::fmaf(a, b, c);
#else
  const float p = a * b;
  return p + c;
#endif
}

// Packs one MR-row micro-tile of A for K strip [pc, pc+depth): element
// (p, r) at dst[p*MR + r], alpha folded in, rows past `rows` zero-padded
// (padded lanes contribute exact zeros and are never stored back).
// kATrans selects the read pattern: A row-major MxK (lda = k) or the
// transposed operand of gemm_at_b, stored KxM (lda = m).
template <bool kATrans, int MR>
void pack_a_tile(const float* CHAM_RESTRICT a, int64_t lda, int64_t row0,
                 int64_t rows, int64_t pc, int64_t depth, float alpha,
                 float* CHAM_RESTRICT dst) {
  for (int64_t p = 0; p < depth; ++p) {
    float* d = dst + p * MR;
    if (alpha == 1.0f) {
      for (int64_t r = 0; r < rows; ++r) {
        d[r] = kATrans ? a[(pc + p) * lda + (row0 + r)]
                       : a[(row0 + r) * lda + (pc + p)];
      }
    } else {
      for (int64_t r = 0; r < rows; ++r) {
        d[r] = alpha * (kATrans ? a[(pc + p) * lda + (row0 + r)]
                                : a[(row0 + r) * lda + (pc + p)]);
      }
    }
    for (int64_t r = rows; r < MR; ++r) d[r] = 0.0f;
  }
}

// Packs the full B panel of K strip [pc, pc+depth) as NR-column blocks:
// block jb at dst + (jb/NR)*depth*NR, element (p, jj) at [p*NR + jj],
// column tails zero-padded. kBTrans selects B row-major KxN (ldb = n) or
// the transposed operand of gemm_a_bt, stored NxK (ldb = k).
template <bool kBTrans, int NR>
void pack_b_panel(const float* CHAM_RESTRICT b, int64_t ldb, int64_t pc,
                  int64_t depth, int64_t n, float* CHAM_RESTRICT dst) {
  for (int64_t jb = 0; jb < n; jb += NR) {
    float* blk = dst + (jb / NR) * depth * NR;
    const int64_t cols = std::min<int64_t>(NR, n - jb);
    for (int64_t p = 0; p < depth; ++p) {
      float* d = blk + p * NR;
      if (kBTrans) {
        for (int64_t jj = 0; jj < cols; ++jj) {
          d[jj] = b[(jb + jj) * ldb + (pc + p)];
        }
      } else {
        const float* s = b + (pc + p) * ldb + jb;
        for (int64_t jj = 0; jj < cols; ++jj) d[jj] = s[jj];
      }
      for (int64_t jj = cols; jj < NR; ++jj) d[jj] = 0.0f;
    }
  }
}

// Operand source descriptors. The packed core is templated on how each
// logical operand element is addressed, not on a single (base, ld) pair:
// dense sources wrap the original packers, gather sources read through a
// caller-owned pointer array. Pack order, zero padding, and alpha folding
// are identical for every source, and everything downstream of the pack
// (micro-kernels, strip/row partition, fma chains) is shared — so gathered
// operands are bit-identical to packing a pre-stacked dense copy.
template <bool kTrans>
struct ADense {
  const float* a;
  int64_t lda;
  template <int MR>
  void pack_tile(int64_t row0, int64_t rows, int64_t pc, int64_t depth,
                 float alpha, float* dst) const {
    pack_a_tile<kTrans, MR>(a, lda, row0, rows, pc, depth, alpha, dst);
  }
};

// Row-gathered A: logical row i is the k contiguous floats at rows[i].
// Backs the replay path, where each row lives in a different latent slab /
// cache entry and is packed in place instead of being stacked first.
struct AGatherRows {
  const float* const* rows;
  template <int MR>
  void pack_tile(int64_t row0, int64_t nrows, int64_t pc, int64_t depth,
                 float alpha, float* CHAM_RESTRICT dst) const {
    for (int64_t p = 0; p < depth; ++p) {
      float* d = dst + p * MR;
      if (alpha == 1.0f) {
        for (int64_t r = 0; r < nrows; ++r) d[r] = rows[row0 + r][pc + p];
      } else {
        for (int64_t r = 0; r < nrows; ++r) {
          d[r] = alpha * rows[row0 + r][pc + p];
        }
      }
      for (int64_t r = nrows; r < MR; ++r) d[r] = 0.0f;
    }
  }
};

template <bool kTrans>
struct BDense {
  const float* b;
  int64_t ldb;
  template <int NR>
  void pack_panel(int64_t pc, int64_t depth, int64_t n, float* dst) const {
    pack_b_panel<kTrans, NR>(b, ldb, pc, depth, n, dst);
  }
};

// Row-gathered B: logical row p is the n contiguous floats at rows[p].
// Backs Linear's weight gradient over gathered samples (gemm_at_b with
// B = the gathered input batch).
struct BGatherRows {
  const float* const* rows;
  template <int NR>
  void pack_panel(int64_t pc, int64_t depth, int64_t n,
                  float* CHAM_RESTRICT dst) const {
    for (int64_t jb = 0; jb < n; jb += NR) {
      float* blk = dst + (jb / NR) * depth * NR;
      const int64_t ncols = std::min<int64_t>(NR, n - jb);
      for (int64_t p = 0; p < depth; ++p) {
        float* d = blk + p * NR;
        const float* s = rows[pc + p] + jb;
        for (int64_t jj = 0; jj < ncols; ++jj) d[jj] = s[jj];
        for (int64_t jj = ncols; jj < NR; ++jj) d[jj] = 0.0f;
      }
    }
  }
};

// Column-gathered B: logical element (p, j) is cols[j][p * stride]. Backs
// the pointwise-conv forward over gathered samples: column (n, pix) of the
// flattened batch reads sample n's latent plane directly (cols[j] =
// rows[n] + pix, stride = pixels per channel) with no xcat staging copy.
struct BGatherCols {
  const float* const* cols;
  int64_t stride;
  template <int NR>
  void pack_panel(int64_t pc, int64_t depth, int64_t n,
                  float* CHAM_RESTRICT dst) const {
    for (int64_t jb = 0; jb < n; jb += NR) {
      float* blk = dst + (jb / NR) * depth * NR;
      const int64_t ncols = std::min<int64_t>(NR, n - jb);
      for (int64_t p = 0; p < depth; ++p) {
        float* d = blk + p * NR;
        const int64_t off = (pc + p) * stride;
        for (int64_t jj = 0; jj < ncols; ++jj) d[jj] = cols[jb + jj][off];
        for (int64_t jj = ncols; jj < NR; ++jj) d[jj] = 0.0f;
      }
    }
  }
};

// Scalar micro-kernel over packed panels: a full MR x NR accumulator tile
// held in registers, no data-dependent branches. Valid lanes load C (which
// chains the fma sequence exactly across K strips through the C slot);
// padded lanes start at zero, accumulate exact zeros, and are not stored.
template <int MR, int NR>
void micro_kernel_generic(int64_t rows, int64_t cols, int64_t depth,
                          const float* CHAM_RESTRICT a_pack,
                          const float* CHAM_RESTRICT b_pack,
                          float* CHAM_RESTRICT c, int64_t ldc) {
  float acc[MR][NR];
  for (int64_t r = 0; r < MR; ++r) {
    for (int64_t j = 0; j < NR; ++j) {
      acc[r][j] = (r < rows && j < cols) ? c[r * ldc + j] : 0.0f;
    }
  }
  for (int64_t p = 0; p < depth; ++p) {
    const float* CHAM_RESTRICT ap = a_pack + p * MR;
    const float* CHAM_RESTRICT bp = b_pack + p * NR;
    for (int64_t r = 0; r < MR; ++r) {
      const float av = ap[r];
      for (int64_t j = 0; j < NR; ++j) {
        acc[r][j] = cham_fma(av, bp[j], acc[r][j]);
      }
    }
  }
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t j = 0; j < cols; ++j) c[r * ldc + j] = acc[r][j];
  }
}

#if defined(CHAM_GEMM_USE_AVX2)
// Full 4x16 tile: 8 YMM accumulators, 2 B vectors, broadcast A lanes.
// _mm256_fmadd_ps rounds once per lane, exactly like std::fmaf.
void micro_kernel_avx2_4x16(int64_t depth, const float* CHAM_RESTRICT a_pack,
                            const float* CHAM_RESTRICT b_pack,
                            float* CHAM_RESTRICT c, int64_t ldc) {
  __m256 acc[4][2];
  for (int r = 0; r < 4; ++r) {
    acc[r][0] = _mm256_loadu_ps(c + r * ldc);
    acc[r][1] = _mm256_loadu_ps(c + r * ldc + 8);
  }
  for (int64_t p = 0; p < depth; ++p) {
    const __m256 b0 = _mm256_loadu_ps(b_pack + p * 16);
    const __m256 b1 = _mm256_loadu_ps(b_pack + p * 16 + 8);
    const float* ap = a_pack + p * 4;
    for (int r = 0; r < 4; ++r) {
      const __m256 av = _mm256_broadcast_ss(ap + r);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < 4; ++r) {
    _mm256_storeu_ps(c + r * ldc, acc[r][0]);
    _mm256_storeu_ps(c + r * ldc + 8, acc[r][1]);
  }
}

// Full 8x4 tile for narrow outputs: 8 XMM accumulators.
void micro_kernel_avx2_8x4(int64_t depth, const float* CHAM_RESTRICT a_pack,
                           const float* CHAM_RESTRICT b_pack,
                           float* CHAM_RESTRICT c, int64_t ldc) {
  __m128 acc[8];
  for (int r = 0; r < 8; ++r) acc[r] = _mm_loadu_ps(c + r * ldc);
  for (int64_t p = 0; p < depth; ++p) {
    const __m128 bv = _mm_loadu_ps(b_pack + p * 4);
    const float* ap = a_pack + p * 8;
    for (int r = 0; r < 8; ++r) {
      acc[r] = _mm_fmadd_ps(_mm_broadcast_ss(ap + r), bv, acc[r]);
    }
  }
  for (int r = 0; r < 8; ++r) _mm_storeu_ps(c + r * ldc, acc[r]);
}

// Edge tile of the wide path (rows <= 4, cols < 16): C lanes past `cols`
// are masked out of the load and the store, valid lanes run the same
// p-ascending fmadd chain as the full kernel. Masked-out accumulator lanes
// start at exact zero and multiply the B panel's zero padding, so they stay
// zero and are never written back. Row padding of the A pack is never read:
// the row loops stop at `rows`.
void micro_kernel_avx2_4xN(int64_t rows, int64_t cols, int64_t depth,
                           const float* CHAM_RESTRICT a_pack,
                           const float* CHAM_RESTRICT b_pack,
                           float* CHAM_RESTRICT c, int64_t ldc) {
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i m0 =
      _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int>(cols)), iota);
  const __m256i m1 =
      _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int>(cols) - 8), iota);
  __m256 acc[4][2];
  for (int64_t r = 0; r < rows; ++r) {
    acc[r][0] = _mm256_maskload_ps(c + r * ldc, m0);
    acc[r][1] = _mm256_maskload_ps(c + r * ldc + 8, m1);
  }
  for (int64_t p = 0; p < depth; ++p) {
    const __m256 b0 = _mm256_loadu_ps(b_pack + p * 16);
    const __m256 b1 = _mm256_loadu_ps(b_pack + p * 16 + 8);
    const float* ap = a_pack + p * 4;
    for (int64_t r = 0; r < rows; ++r) {
      const __m256 av = _mm256_broadcast_ss(ap + r);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  for (int64_t r = 0; r < rows; ++r) {
    _mm256_maskstore_ps(c + r * ldc, m0, acc[r][0]);
    _mm256_maskstore_ps(c + r * ldc + 8, m1, acc[r][1]);
  }
}

// Edge tile of the narrow path (rows <= 8, cols < 4), same masking scheme.
void micro_kernel_avx2_8xN(int64_t rows, int64_t cols, int64_t depth,
                           const float* CHAM_RESTRICT a_pack,
                           const float* CHAM_RESTRICT b_pack,
                           float* CHAM_RESTRICT c, int64_t ldc) {
  const __m128i iota = _mm_setr_epi32(0, 1, 2, 3);
  const __m128i m =
      _mm_cmpgt_epi32(_mm_set1_epi32(static_cast<int>(cols)), iota);
  __m128 acc[8];
  for (int64_t r = 0; r < rows; ++r) {
    acc[r] = _mm_maskload_ps(c + r * ldc, m);
  }
  for (int64_t p = 0; p < depth; ++p) {
    const __m128 bv = _mm_loadu_ps(b_pack + p * 4);
    const float* ap = a_pack + p * 8;
    for (int64_t r = 0; r < rows; ++r) {
      acc[r] = _mm_fmadd_ps(_mm_broadcast_ss(ap + r), bv, acc[r]);
    }
  }
  for (int64_t r = 0; r < rows; ++r) {
    _mm_maskstore_ps(c + r * ldc, m, acc[r]);
  }
}
#endif  // CHAM_GEMM_USE_AVX2

#if defined(CHAM_GEMM_USE_NEON)
// Full 4x16 tile: 16 Q accumulators. vfmaq_n_f32 fuses per lane like fmaf.
void micro_kernel_neon_4x16(int64_t depth, const float* CHAM_RESTRICT a_pack,
                            const float* CHAM_RESTRICT b_pack,
                            float* CHAM_RESTRICT c, int64_t ldc) {
  float32x4_t acc[4][4];
  for (int r = 0; r < 4; ++r) {
    for (int q = 0; q < 4; ++q) acc[r][q] = vld1q_f32(c + r * ldc + 4 * q);
  }
  for (int64_t p = 0; p < depth; ++p) {
    float32x4_t bv[4];
    for (int q = 0; q < 4; ++q) bv[q] = vld1q_f32(b_pack + p * 16 + 4 * q);
    const float* ap = a_pack + p * 4;
    for (int r = 0; r < 4; ++r) {
      for (int q = 0; q < 4; ++q) acc[r][q] = vfmaq_n_f32(acc[r][q], bv[q], ap[r]);
    }
  }
  for (int r = 0; r < 4; ++r) {
    for (int q = 0; q < 4; ++q) vst1q_f32(c + r * ldc + 4 * q, acc[r][q]);
  }
}

// Full 8x4 tile for narrow outputs.
void micro_kernel_neon_8x4(int64_t depth, const float* CHAM_RESTRICT a_pack,
                           const float* CHAM_RESTRICT b_pack,
                           float* CHAM_RESTRICT c, int64_t ldc) {
  float32x4_t acc[8];
  for (int r = 0; r < 8; ++r) acc[r] = vld1q_f32(c + r * ldc);
  for (int64_t p = 0; p < depth; ++p) {
    const float32x4_t bv = vld1q_f32(b_pack + p * 4);
    const float* ap = a_pack + p * 8;
    for (int r = 0; r < 8; ++r) acc[r] = vfmaq_n_f32(acc[r], bv, ap[r]);
  }
  for (int r = 0; r < 8; ++r) vst1q_f32(c + r * ldc, acc[r]);
}
#endif  // CHAM_GEMM_USE_NEON

// Dispatch: intrinsic kernels handle full tiles, the generic kernel handles
// edge tiles (and everything under CHAM_SIMD=generic). Per-lane arithmetic
// is identical either way, so the split is invisible in the output bits.
template <int MR, int NR>
void micro_kernel(int64_t rows, int64_t cols, int64_t depth,
                  const float* a_pack, const float* b_pack, float* c,
                  int64_t ldc) {
#if defined(CHAM_GEMM_USE_AVX2)
  if constexpr (MR == 4 && NR == 16) {
    if (rows == MR && cols == NR) {
      micro_kernel_avx2_4x16(depth, a_pack, b_pack, c, ldc);
    } else {
      micro_kernel_avx2_4xN(rows, cols, depth, a_pack, b_pack, c, ldc);
    }
    return;
  }
  if constexpr (MR == 8 && NR == 4) {
    if (rows == MR && cols == NR) {
      micro_kernel_avx2_8x4(depth, a_pack, b_pack, c, ldc);
    } else {
      micro_kernel_avx2_8xN(rows, cols, depth, a_pack, b_pack, c, ldc);
    }
    return;
  }
#elif defined(CHAM_GEMM_USE_NEON)
  if (rows == MR && cols == NR) {
    if constexpr (MR == 4 && NR == 16) {
      micro_kernel_neon_4x16(depth, a_pack, b_pack, c, ldc);
      return;
    }
    if constexpr (MR == 8 && NR == 4) {
      micro_kernel_neon_8x4(depth, a_pack, b_pack, c, ldc);
      return;
    }
  }
#endif
  micro_kernel_generic<MR, NR>(rows, cols, depth, a_pack, b_pack, c, ldc);
}

// One worker's row range [i0, i1) of a single K strip: streams MR-row tiles
// of A through the micro-kernel against the strip's shared packed B panel.
// A-tile scratch comes from the worker's own arena, so repeat calls never
// touch the heap.
template <class ASrc, int MR, int NR>
void run_rows(int64_t i0, int64_t i1, int64_t n, int64_t pc, int64_t depth,
              float alpha, const ASrc& asrc,
              const float* CHAM_RESTRICT b_pack, float* c) {
  ws::ArenaScope scratch;
  float* a_pack = scratch.floats(static_cast<size_t>(kKc * MR));
  for (int64_t ic = i0; ic < i1; ic += MR) {
    const int64_t rows = std::min<int64_t>(MR, i1 - ic);
    asrc.template pack_tile<MR>(ic, rows, pc, depth, alpha, a_pack);
    for (int64_t jb = 0; jb < n; jb += NR) {
      const int64_t cols = std::min<int64_t>(NR, n - jb);
      micro_kernel<MR, NR>(rows, cols, depth, a_pack,
                           b_pack + (jb / NR) * depth * NR, c + ic * n + jb,
                           n);
    }
  }
}

void scale_c(float* c, int64_t count, float beta) {
  if (beta == 0.0f) {
    std::fill(c, c + count, 0.0f);
  } else if (beta != 1.0f) {
    for (int64_t i = 0; i < count; ++i) c[i] *= beta;
  }
}

// Strip loop of the driver for one tile geometry: per K strip, pack the B
// panel ONCE into the caller's arena, then hand row ranges to the pool.
// Every worker chunk reads the same packed panel instead of re-packing its
// own copy — the redundant per-chunk B pack was the dominant serial-work
// multiplier that kept multi-thread GEMM scaling flat. The beta pass rides
// on the first strip's dispatch, keeping one dispatch per strip.
//
// Determinism: the row partition is the same static_chunk arithmetic for
// every strip, each element's operation order (beta scale, then p-ascending
// fma chain across ascending strips) is untouched, and tile grouping never
// mixes rows or columns — so bits remain independent of both thread count
// and the strip barriers.
template <class ASrc, class BSrc, int MR, int NR>
void run_strips(int64_t m, int64_t n, int64_t k, float alpha, const ASrc& asrc,
                const BSrc& bsrc, float beta, float* c) {
  ws::ArenaScope scratch;
  const int64_t jblocks = (n + NR - 1) / NR;
  float* b_pack = scratch.floats(static_cast<size_t>(jblocks * kKc * NR));
  const int64_t grain = gemm_grain(n, k);
  for (int64_t pc = 0; pc < k; pc += kKc) {
    const int64_t depth = std::min(kKc, k - pc);
    bsrc.template pack_panel<NR>(pc, depth, n, b_pack);
    parallel_for(
        0, m,
        [&](int64_t i0, int64_t i1) {
          if (pc == 0) scale_c(c + i0 * n, (i1 - i0) * n, beta);
          run_rows<ASrc, MR, NR>(i0, i1, n, pc, depth, alpha, asrc, b_pack,
                                 c);
        },
        grain);
  }
}

// Shared parallel driver. Chunks own contiguous row ranges of C: beta pass,
// then K-strip accumulation. Per element the operations (and their order)
// are the same for any partition, so results are bit-identical for every
// thread count.
template <class ASrc, class BSrc>
void gemm_driver(int64_t m, int64_t n, int64_t k, float alpha,
                 const ASrc& asrc, const BSrc& bsrc, float beta, float* c) {
  if (alpha == 0.0f || k == 0) {
    parallel_for(
        0, m,
        [&](int64_t i0, int64_t i1) {
          scale_c(c + i0 * n, (i1 - i0) * n, beta);
        },
        gemm_grain(n, k));
    return;
  }
  if (n <= kNarrowCutoff) {
    run_strips<ASrc, BSrc, kNarrowMr, kNarrowNr>(m, n, k, alpha, asrc, bsrc,
                                                 beta, c);
  } else {
    run_strips<ASrc, BSrc, kWideMr, kWideNr>(m, n, k, alpha, asrc, bsrc,
                                             beta, c);
  }
}

#if CHAM_CHECKS_LEVEL >= 1
// True if the half-open byte ranges of two operand panels overlap; used for
// the no-alias precondition (C must not alias A or B — the kernels stream A/B
// while writing C in place).
bool ranges_overlap(const float* p, int64_t pn, const float* q, int64_t qn) {
  const auto pb = reinterpret_cast<uintptr_t>(p);
  const auto qb = reinterpret_cast<uintptr_t>(q);
  const auto pe = pb + static_cast<uintptr_t>(pn) * sizeof(float);
  const auto qe = qb + static_cast<uintptr_t>(qn) * sizeof(float);
  return pb < qe && qb < pe;
}

// Shared entry contract of the three kernels: non-negative extents, non-null
// panels for non-empty operands, and C aliasing neither input.
void check_gemm_args(const char* name, int64_t m, int64_t n, int64_t k,
                     const float* a, const float* b, const float* c,
                     int64_t a_elems, int64_t b_elems) {
  CHAM_CHECK(m >= 0 && n >= 0 && k >= 0,
             std::string(name) + ": negative extent m/n/k = " +
                 std::to_string(m) + "/" + std::to_string(n) + "/" +
                 std::to_string(k));
  CHAM_CHECK(c != nullptr || m * n == 0, std::string(name) + ": null C");
  CHAM_CHECK((a != nullptr && b != nullptr) || m * n == 0 || k == 0,
             std::string(name) + ": null A/B panel");
  CHAM_CHECK(!ranges_overlap(a, a_elems, c, m * n) &&
                 !ranges_overlap(b, b_elems, c, m * n),
             std::string(name) + ": C aliases an input panel");
}

// Entry contract of the gather kernels: the pointer array itself must be
// present, every gathered pointer must be non-null, and none of the gathered
// spans may alias C (the core streams gathered panels while writing C in
// place). The per-pointer scan is O(m) on an O(k)-per-row operand, so it
// stays in the always-on tier.
void check_gather_ptrs(const char* name, const float* const* ptrs,
                       int64_t count, int64_t span, const float* c,
                       int64_t c_elems) {
  CHAM_CHECK(ptrs != nullptr || count == 0 || c_elems == 0,
             std::string(name) + ": null gather pointer array");
  if (ptrs == nullptr) return;
  for (int64_t i = 0; i < count; ++i) {
    CHAM_CHECK(ptrs[i] != nullptr,
               std::string(name) + ": null gathered pointer at index " +
                   std::to_string(i));
    CHAM_CHECK(!ranges_overlap(ptrs[i], span, c, c_elems),
               std::string(name) + ": C aliases gathered span " +
                   std::to_string(i));
  }
}
#define CHAM_GEMM_CHECK(...) check_gemm_args(__VA_ARGS__)
#define CHAM_GEMM_GATHER_CHECK(...) check_gather_ptrs(__VA_ARGS__)
#else
#define CHAM_GEMM_CHECK(...) ((void)0)
#define CHAM_GEMM_GATHER_CHECK(...) ((void)0)
#endif

}  // namespace

const char* gemm_simd_variant() {
#if defined(CHAM_GEMM_USE_AVX2)
  return "avx2";
#elif defined(CHAM_GEMM_USE_NEON)
  return "neon";
#else
  return "generic";
#endif
}

void gemm(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
          const float* b, float beta, float* c) {
  CHAM_GEMM_CHECK("gemm", m, n, k, a, b, c, m * k, k * n);
  if (m <= 0 || n <= 0) return;
  gemm_driver(m, n, k, alpha, ADense<false>{a, k}, BDense<false>{b, n}, beta,
              c);
}

void gemm_at_b(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
               const float* b, float beta, float* c) {
  CHAM_GEMM_CHECK("gemm_at_b", m, n, k, a, b, c, k * m, k * n);
  if (m <= 0 || n <= 0) return;
  // C[i][j] += sum_p A[p][i] * B[p][j]: the transposed A pack reads column
  // i of the KxM operand; everything downstream is the shared core.
  gemm_driver(m, n, k, alpha, ADense<true>{a, m}, BDense<false>{b, n}, beta,
              c);
}

void gemm_a_bt(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
               const float* b, float beta, float* c) {
  CHAM_GEMM_CHECK("gemm_a_bt", m, n, k, a, b, c, m * k, n * k);
  if (m <= 0 || n <= 0) return;
  // C[i][j] += dot(A row i, B row j): the transposed B pack reads row j of
  // the NxK operand. Accumulation is the same p-ascending float fma chain
  // as the other kernels (this used to be a per-element double dot, which
  // made the three kernels disagree in precision and resisted blocking).
  gemm_driver(m, n, k, alpha, ADense<false>{a, k}, BDense<true>{b, k}, beta,
              c);
}

void gemm_gather_a_bt(int64_t m, int64_t n, int64_t k, float alpha,
                      const float* const* a_rows, const float* b, float beta,
                      float* c) {
  CHAM_GEMM_CHECK("gemm_gather_a_bt", m, n, k, b, b, c, n * k, n * k);
  CHAM_GEMM_GATHER_CHECK("gemm_gather_a_bt", a_rows, m, k, c, m * n);
  if (m <= 0 || n <= 0) return;
  // gemm_a_bt with logical A row i gathered from a_rows[i]: only the pack's
  // load addresses differ from the dense kernel, so the result is
  // bit-identical to stacking the rows first.
  gemm_driver(m, n, k, alpha, AGatherRows{a_rows}, BDense<true>{b, k}, beta,
              c);
}

void gemm_at_b_gather_b(int64_t m, int64_t n, int64_t k, float alpha,
                        const float* a, const float* const* b_rows,
                        float beta, float* c) {
  CHAM_GEMM_CHECK("gemm_at_b_gather_b", m, n, k, a, a, c, k * m, k * m);
  CHAM_GEMM_GATHER_CHECK("gemm_at_b_gather_b", b_rows, k, n, c, m * n);
  if (m <= 0 || n <= 0) return;
  // gemm_at_b with logical B row p gathered from b_rows[p].
  gemm_driver(m, n, k, alpha, ADense<true>{a, m}, BGatherRows{b_rows}, beta,
              c);
}

void gemm_gather_cols(int64_t m, int64_t n, int64_t k, float alpha,
                      const float* a, const float* const* b_cols,
                      int64_t b_col_stride, float beta, float* c) {
  CHAM_GEMM_CHECK("gemm_gather_cols", m, n, k, a, a, c, m * k, m * k);
  CHAM_CHECK(b_col_stride >= 1, "gemm_gather_cols: column stride must be >= 1");
  CHAM_GEMM_GATHER_CHECK("gemm_gather_cols", b_cols, n,
                         k > 0 ? (k - 1) * b_col_stride + 1 : 0, c, m * n);
  if (m <= 0 || n <= 0) return;
  // gemm with logical B element (p, j) gathered from b_cols[j][p * stride]:
  // serves the pointwise-conv forward straight from per-sample latent
  // storage with no xcat staging buffer.
  gemm_driver(m, n, k, alpha, ADense<false>{a, k},
              BGatherCols{b_cols, b_col_stride}, beta, c);
}

namespace ref {

// The reference kernels mirror the packed core's arithmetic one element at
// a time: beta pass first, then for each C element a p-ascending cham_fma
// chain with alpha folded into the A operand. An alpha of exactly 1
// multiplies through unchanged, so no special case is needed to match the
// packed kernels' alpha==1 copy pack.
void gemm(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
          const float* b, float beta, float* c) {
  if (m <= 0 || n <= 0) return;
  scale_c(c, m * n, beta);
  if (alpha == 0.0f || k == 0) return;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = c[i * n + j];
      for (int64_t p = 0; p < k; ++p) {
        acc = cham_fma(alpha * a[i * k + p], b[p * n + j], acc);
      }
      c[i * n + j] = acc;
    }
  }
}

void gemm_at_b(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
               const float* b, float beta, float* c) {
  if (m <= 0 || n <= 0) return;
  scale_c(c, m * n, beta);
  if (alpha == 0.0f || k == 0) return;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = c[i * n + j];
      for (int64_t p = 0; p < k; ++p) {
        acc = cham_fma(alpha * a[p * m + i], b[p * n + j], acc);
      }
      c[i * n + j] = acc;
    }
  }
}

void gemm_a_bt(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
               const float* b, float beta, float* c) {
  if (m <= 0 || n <= 0) return;
  scale_c(c, m * n, beta);
  if (alpha == 0.0f || k == 0) return;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = c[i * n + j];
      for (int64_t p = 0; p < k; ++p) {
        acc = cham_fma(alpha * a[i * k + p], b[j * k + p], acc);
      }
      c[i * n + j] = acc;
    }
  }
}

}  // namespace ref

Tensor matmul(const Tensor& a, const Tensor& b) {
  CHAM_CHECK(a.rank() == 2 && b.rank() == 2,
             "matmul of " + a.shape().to_string() + " @ " +
                 b.shape().to_string());
  CHAM_CHECK(a.dim(1) == b.dim(0),
             "matmul inner-dim mismatch: " + a.shape().to_string() + " @ " +
                 b.shape().to_string());
  Tensor c({a.dim(0), b.dim(1)});
  gemm(a.dim(0), b.dim(1), a.dim(1), 1.0f, a.data(), b.data(), 0.0f, c.data());
  return c;
}

}  // namespace cham
