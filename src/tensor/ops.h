// Elementwise, reduction and activation operations on Tensors.
//
// Free functions keep the Tensor class small; everything here is shape-checked
// with asserts (experiments run Release, tests run with assertions enabled via
// a dedicated Debug target if needed — shape bugs are caught by unit tests).
#pragma once

#include <span>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace cham::ops {

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);  // elementwise
Tensor scale(const Tensor& a, float s);

float sum(const Tensor& a);
float mean(const Tensor& a);
float max(const Tensor& a);
int64_t argmax(std::span<const float> v);
float dot(std::span<const float> a, std::span<const float> b);
// Squared L2 norm of all elements.
float sq_norm(const Tensor& a);
float l2_norm(const Tensor& a);

// Numerically-stable softmax over the last dimension of a 2-D tensor
// (rows = batch). For a 1-D tensor treats the whole tensor as one row.
Tensor softmax(const Tensor& logits);
// Softmax of a single row vector given as a span.
std::vector<float> softmax_row(std::span<const float> logits);
// log(softmax) over the last dim, 2-D or 1-D as above.
Tensor log_softmax(const Tensor& logits);

// KL(p || q) for two probability vectors. Clamps q away from zero.
double kl_divergence(std::span<const float> p, std::span<const float> q);

// Fill with i.i.d. draws.
void fill_normal(Tensor& t, Rng& rng, float mean, float stddev);
void fill_uniform(Tensor& t, Rng& rng, float lo, float hi);

// Relative error helper used by tests and numerical checks.
double max_abs_diff(const Tensor& a, const Tensor& b);

// Concatenates rank-N tensors along dimension 0 (all other dims equal).
Tensor concat0(const std::vector<const Tensor*>& parts);

// Copies rows [begin, end) of a 2-D tensor (or leading-dim slices of any
// rank) into a new tensor.
Tensor slice0(const Tensor& t, int64_t begin, int64_t end);

// Transpose of a 2-D tensor.
Tensor transpose2d(const Tensor& t);

// Indices of the k largest values (descending), k <= size.
std::vector<int64_t> topk_indices(std::span<const float> v, int64_t k);

}  // namespace cham::ops
