#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "tensor/thread_pool.h"

namespace cham::ops {
namespace {

// Elementwise work per chunk below which a parallel dispatch is not worth it.
constexpr int64_t kElemGrain = 16384;
// Softmax rows per chunk minimum (each row is an exp-heavy pass).
constexpr int64_t kRowGrain = 4;

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out += b;
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out -= b;
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  CHAM_CHECK_SHAPE(a.shape(), b.shape());
  Tensor out = a;
  parallel_for(
      0, out.numel(),
      [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) out[i] *= b[i];
      },
      kElemGrain);
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  out *= s;
  return out;
}

float sum(const Tensor& a) {
  double acc = 0;
  for (int64_t i = 0; i < a.numel(); ++i) acc += a[i];
  return static_cast<float>(acc);
}

float mean(const Tensor& a) {
  CHAM_CHECK(a.numel() > 0, "mean of empty tensor");
  return sum(a) / static_cast<float>(a.numel());
}

float max(const Tensor& a) {
  CHAM_CHECK(a.numel() > 0, "max of empty tensor");
  float m = a[0];
  for (int64_t i = 1; i < a.numel(); ++i) m = std::max(m, a[i]);
  return m;
}

int64_t argmax(std::span<const float> v) {
  CHAM_CHECK(!v.empty(), "argmax of empty span");
  int64_t best = 0;
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[static_cast<size_t>(best)]) best = static_cast<int64_t>(i);
  }
  return best;
}

float dot(std::span<const float> a, std::span<const float> b) {
  CHAM_CHECK(a.size() == b.size(),
             "dot length mismatch: " + std::to_string(a.size()) + " vs " +
                 std::to_string(b.size()));
  double acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc += double(a[i]) * double(b[i]);
  return static_cast<float>(acc);
}

float sq_norm(const Tensor& a) {
  double acc = 0;
  for (int64_t i = 0; i < a.numel(); ++i) acc += double(a[i]) * double(a[i]);
  return static_cast<float>(acc);
}

float l2_norm(const Tensor& a) { return std::sqrt(sq_norm(a)); }

std::vector<float> softmax_row(std::span<const float> logits) {
  std::vector<float> out(logits.size());
  float m = logits[0];
  for (float v : logits) m = std::max(m, v);
  double z = 0;
  for (size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - m);
    z += out[i];
  }
  const float inv = static_cast<float>(1.0 / z);
  for (float& v : out) v *= inv;
  return out;
}

Tensor softmax(const Tensor& logits) {
  const bool is2d = logits.rank() == 2;
  const int64_t rows = is2d ? logits.dim(0) : 1;
  const int64_t cols = is2d ? logits.dim(1) : logits.numel();
  Tensor out(logits.shape());
  parallel_for(
      0, rows,
      [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float* in = logits.data() + r * cols;
          float* o = out.data() + r * cols;
          float m = in[0];
          for (int64_t c = 1; c < cols; ++c) m = std::max(m, in[c]);
          double z = 0;
          for (int64_t c = 0; c < cols; ++c) {
            o[c] = std::exp(in[c] - m);
            z += o[c];
          }
          const float inv = static_cast<float>(1.0 / z);
          for (int64_t c = 0; c < cols; ++c) o[c] *= inv;
        }
      },
      kRowGrain);
  return out;
}

Tensor log_softmax(const Tensor& logits) {
  const bool is2d = logits.rank() == 2;
  const int64_t rows = is2d ? logits.dim(0) : 1;
  const int64_t cols = is2d ? logits.dim(1) : logits.numel();
  Tensor out(logits.shape());
  parallel_for(
      0, rows,
      [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float* in = logits.data() + r * cols;
          float* o = out.data() + r * cols;
          float m = in[0];
          for (int64_t c = 1; c < cols; ++c) m = std::max(m, in[c]);
          double z = 0;
          for (int64_t c = 0; c < cols; ++c) z += std::exp(in[c] - m);
          const float logz = m + static_cast<float>(std::log(z));
          for (int64_t c = 0; c < cols; ++c) o[c] = in[c] - logz;
        }
      },
      kRowGrain);
  return out;
}

double kl_divergence(std::span<const float> p, std::span<const float> q) {
  CHAM_CHECK(p.size() == q.size(),
             "KL length mismatch: " + std::to_string(p.size()) + " vs " +
                 std::to_string(q.size()));
  constexpr double kEps = 1e-8;
  double kl = 0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double pi = std::max(double(p[i]), 0.0);
    if (pi <= 0) continue;
    const double qi = std::max(double(q[i]), kEps);
    kl += pi * std::log(pi / qi);
  }
  return std::max(kl, 0.0);
}

void fill_normal(Tensor& t, Rng& rng, float mean, float stddev) {
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = rng.normal_f(mean, stddev);
}

void fill_uniform(Tensor& t, Rng& rng, float lo, float hi) {
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform_f(lo, hi);
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  CHAM_CHECK_SHAPE(a.shape(), b.shape());
  double m = 0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::abs(double(a[i]) - double(b[i])));
  }
  return m;
}

Tensor concat0(const std::vector<const Tensor*>& parts) {
  CHAM_CHECK(!parts.empty(), "concat0 of zero parts");
  const Shape& first = parts.front()->shape();
  int64_t lead = 0;
  for (const Tensor* p : parts) {
    CHAM_CHECK(p->rank() == first.rank(),
               "concat0 rank mismatch: " + p->shape().to_string() + " vs " +
                   first.to_string());
    for (int64_t d = 1; d < first.rank(); ++d) {
      CHAM_CHECK(p->shape()[d] == first[d],
                 "concat0 trailing-dim mismatch: " + p->shape().to_string() +
                     " vs " + first.to_string());
    }
    lead += p->dim(0);
  }
  Shape out_shape = first;
  out_shape.set_dim(0, lead);
  Tensor out(out_shape);
  int64_t offset = 0;
  for (const Tensor* p : parts) {
    std::copy(p->data(), p->data() + p->numel(), out.data() + offset);
    offset += p->numel();
  }
  return out;
}

Tensor slice0(const Tensor& t, int64_t begin, int64_t end) {
  CHAM_CHECK(begin >= 0 && begin <= end && end <= t.dim(0),
             "slice0 [" + std::to_string(begin) + ", " + std::to_string(end) +
                 ") of " + t.shape().to_string());
  const int64_t per = t.numel() / t.dim(0);
  Shape out_shape = t.shape();
  out_shape.set_dim(0, end - begin);
  Tensor out(out_shape);
  std::copy(t.data() + begin * per, t.data() + end * per, out.data());
  return out;
}

Tensor transpose2d(const Tensor& t) {
  CHAM_CHECK(t.rank() == 2, "transpose2d of " + t.shape().to_string());
  Tensor out({t.dim(1), t.dim(0)});
  for (int64_t i = 0; i < t.dim(0); ++i) {
    for (int64_t j = 0; j < t.dim(1); ++j) out.at(j, i) = t.at(i, j);
  }
  return out;
}

std::vector<int64_t> topk_indices(std::span<const float> v, int64_t k) {
  std::vector<int64_t> idx(v.size());
  for (size_t i = 0; i < v.size(); ++i) idx[i] = static_cast<int64_t>(i);
  const int64_t kk = std::min<int64_t>(k, static_cast<int64_t>(v.size()));
  std::partial_sort(idx.begin(), idx.begin() + kk, idx.end(),
                    [&](int64_t a, int64_t b) {
                      return v[static_cast<size_t>(a)] >
                             v[static_cast<size_t>(b)];
                    });
  idx.resize(static_cast<size_t>(kk));
  return idx;
}

}  // namespace cham::ops
