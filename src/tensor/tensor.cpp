#include "tensor/tensor.h"

#include <sstream>

namespace cham {

std::string Shape::to_string() const {
  std::ostringstream os;
  os << "[";
  for (int64_t i = 0; i < rank_; ++i) {
    if (i) os << ", ";
    os << dims_[static_cast<size_t>(i)];
  }
  os << "]";
  return os.str();
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::from(std::initializer_list<float> values) {
  Tensor t(Shape{{static_cast<int64_t>(values.size())}});
  int64_t i = 0;
  for (float v : values) t[i++] = v;
  return t;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  CHAM_CHECK(new_shape.numel() == numel(),
             "reshape " + shape_.to_string() + " -> " + new_shape.to_string() +
                 " changes numel");
  return Tensor(new_shape, data_);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor& Tensor::operator+=(const Tensor& o) {
  CHAM_CHECK_SHAPE(shape_, o.shape_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& o) {
  CHAM_CHECK_SHAPE(shape_, o.shape_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

std::string Tensor::to_string(int64_t max_elems) const {
  std::ostringstream os;
  os << "Tensor" << shape_.to_string() << " {";
  const int64_t n = std::min<int64_t>(numel(), max_elems);
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << data_[static_cast<size_t>(i)];
  }
  if (numel() > n) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace cham
