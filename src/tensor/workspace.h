// Workspace memory for the compute hot path: a recycling pool for Tensor
// storage and a per-thread bump arena for kernel scratch.
//
// The replay loop runs the same layer shapes every step, so after a short
// warm-up every allocation it makes is a repeat of one it made before. Two
// mechanisms exploit that:
//
//   Pool   A process-wide size-class freelist behind PoolAllocator<float>
//          (the allocator of Tensor storage). Freed buffers go to a
//          power-of-two class list instead of the heap; the next Tensor of
//          a similar size reuses them. Steady state: zero heap traffic.
//
//   Arena  A thread-local bump allocator for transient kernel scratch
//          (GEMM pack panels, im2col column matrices). ArenaScope rewinds
//          on destruction, so scratch costs a pointer bump, never a free.
//          Chunks grow geometrically during warm-up and consolidate into
//          one block once idle; after that, allocation never touches the
//          heap again.
//
// Both report into WorkspaceStats (high-water marks, heap refills, freelist
// hits); ChameleonLearner mirrors the snapshot into OpStats so the perf
// trajectory records allocation behaviour alongside MACs and bytes.
//
// Thread-safety: the pool is mutex-protected (Tensors are created on any
// thread); each arena belongs to exactly one thread. stats() may be called
// concurrently with use.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cham::ws {

struct WorkspaceStats {
  int64_t pool_heap_allocs = 0;     // freelist misses that hit the heap
  int64_t pool_freelist_hits = 0;   // served from the global freelist
  int64_t pool_local_hits = 0;      // served lock-free from a thread cache
  int64_t pool_bytes_in_use = 0;    // pool capacity currently handed out
  int64_t pool_high_water_bytes = 0;
  int64_t arena_reserved_bytes = 0;   // chunk capacity across all arenas
  int64_t arena_high_water_bytes = 0;  // max live scratch in any one arena
};

// Snapshot of the pool counters plus every live arena. Thread-safe.
WorkspaceStats stats();

// Zeroes the cumulative counters and re-bases the high-water marks at the
// current usage (for tests and benchmarks that measure steady-state deltas).
void reset_stats();

// Raw pool entry points (used by PoolAllocator; exposed for tests).
// Capacity is the power-of-two size class of `bytes`; acquire/release must
// agree on `bytes` for a given block, which allocator usage guarantees.
void* pool_acquire(std::size_t bytes);
void pool_release(void* p, std::size_t bytes);

// Stateless std::vector allocator backed by the pool. All instances compare
// equal, so pooled vectors move and swap freely across Tensors.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) {}  // NOLINT(google-explicit-*)

  T* allocate(std::size_t n) {
    return static_cast<T*>(pool_acquire(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) { pool_release(p, n * sizeof(T)); }

  bool operator==(const PoolAllocator&) const { return true; }
  bool operator!=(const PoolAllocator&) const { return false; }
};

// The storage type of Tensor (tensor.h).
using FloatBuffer = std::vector<float, PoolAllocator<float>>;

// Thread-local bump allocator for kernel scratch. Never returns memory to
// the heap while live; rewinding reclaims everything past a mark in O(1).
class Arena {
 public:
  // The calling thread's arena (created on first use, lives as long as the
  // thread; pool worker threads never exit, so their arenas are permanent).
  static Arena& local();

  Arena();
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // 64-byte-aligned scratch of n floats, valid until a rewind past the mark
  // taken before this call. Never returns nullptr (throws std::bad_alloc on
  // exhaustion like the heap would).
  float* alloc_floats(std::size_t n);

  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };
  Mark mark() const { return {active_, chunk_used_}; }
  void rewind(Mark m);

  // Owner-thread only: walks chunks_, which the owner mutates freely.
  std::size_t live_bytes() const;
  // Safe from any thread (reads the atomic gauge, not chunks_).
  std::size_t reserved_bytes() const {
    return reserved_.load(std::memory_order_relaxed);
  }
  std::size_t high_water_bytes() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  // Owner-thread only (live_bytes walks chunks_): reset_stats() callers
  // must be quiescent — no other thread allocating — which tests and
  // benchmarks measuring steady-state deltas are by construction.
  void rebase_high_water() {
    high_water_.store(live_bytes(), std::memory_order_relaxed);
  }

 private:
  struct Chunk {
    std::vector<std::byte> raw;  // over-allocated for 64-byte alignment
    std::byte* base = nullptr;   // aligned start
    std::size_t cap = 0;         // usable bytes
    std::size_t used = 0;
  };
  void add_chunk(std::size_t min_bytes);

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;      // index of the chunk being bumped
  std::size_t chunk_used_ = 0;  // bytes used in the active chunk
  // Monitoring gauges, written only by the owner thread but polled by
  // ws::stats() from any thread (ordering policy case 3, util/sync.h:
  // relaxed is enough — stats never gate control flow). stats() used to
  // walk chunks_ cross-thread for reserved bytes, racing the owner's
  // add_chunk/consolidation; the gauge removes that race.
  std::atomic<std::size_t> high_water_{0};
  std::atomic<std::size_t> reserved_{0};
};

// RAII scratch scope: everything allocated through it is reclaimed when the
// scope dies. Scopes nest (inner scopes rewind first).
class ArenaScope {
 public:
  ArenaScope() : arena_(Arena::local()), mark_(arena_.mark()) {}
  ~ArenaScope() { arena_.rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  float* floats(std::size_t n) { return arena_.alloc_floats(n); }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

}  // namespace cham::ws
