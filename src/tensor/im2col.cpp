#include "tensor/im2col.h"

#include <string>

#include "tensor/thread_pool.h"
#include "util/check.h"

namespace cham {
namespace {

// Entry contract shared by both directions: a well-formed geometry (positive
// extents, kernel reachable from the padded input) and non-null panels.
// Params are maybe_unused because the body compiles empty at CHAM_CHECKS=off.
void check_geometry([[maybe_unused]] const char* name,
                    [[maybe_unused]] const float* img,
                    [[maybe_unused]] const ConvGeometry& g,
                    [[maybe_unused]] const float* col) {
  CHAM_CHECK(g.in_c > 0 && g.in_h > 0 && g.in_w > 0,
             std::string(name) + ": non-positive input extent");
  CHAM_CHECK(g.kernel > 0 && g.stride > 0 && g.pad >= 0,
             std::string(name) + ": bad kernel/stride/pad");
  CHAM_CHECK(g.in_h + 2 * g.pad >= g.kernel && g.in_w + 2 * g.pad >= g.kernel,
             std::string(name) + ": kernel " + std::to_string(g.kernel) +
                 " exceeds padded input " + std::to_string(g.in_h) + "x" +
                 std::to_string(g.in_w) + " (pad " + std::to_string(g.pad) +
                 ")");
  CHAM_CHECK(img != nullptr && col != nullptr,
             std::string(name) + ": null image/column panel");
}

}  // namespace

void im2col(const float* img, const ConvGeometry& g, float* col) {
  check_geometry("im2col", img, g, col);
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t rows_per_c = g.kernel * g.kernel;
  // Channels own disjoint row blocks of the column matrix, so the channel
  // loop parallelises without any write overlap.
  parallel_for(0, g.in_c, [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      const float* plane = img + c * g.in_h * g.in_w;
      int64_t row = c * rows_per_c;
      for (int64_t kh = 0; kh < g.kernel; ++kh) {
        for (int64_t kw = 0; kw < g.kernel; ++kw, ++row) {
          float* out = col + row * oh * ow;
          for (int64_t y = 0; y < oh; ++y) {
            const int64_t iy = y * g.stride + kh - g.pad;
            if (iy < 0 || iy >= g.in_h) {
              for (int64_t x = 0; x < ow; ++x) out[y * ow + x] = 0.0f;
              continue;
            }
            const float* src = plane + iy * g.in_w;
            for (int64_t x = 0; x < ow; ++x) {
              const int64_t ix = x * g.stride + kw - g.pad;
              out[y * ow + x] =
                  (ix >= 0 && ix < g.in_w) ? src[ix] : 0.0f;
            }
          }
        }
      }
    }
  });
}

void col2im(const float* col, const ConvGeometry& g, float* img) {
  check_geometry("col2im", img, g, col);
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t rows_per_c = g.kernel * g.kernel;
  // Taps overlap across (kh, kw) within one channel but never across
  // channels; per-channel the accumulation order matches the serial loop.
  parallel_for(0, g.in_c, [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      float* plane = img + c * g.in_h * g.in_w;
      int64_t row = c * rows_per_c;
      for (int64_t kh = 0; kh < g.kernel; ++kh) {
        for (int64_t kw = 0; kw < g.kernel; ++kw, ++row) {
          const float* in = col + row * oh * ow;
          for (int64_t y = 0; y < oh; ++y) {
            const int64_t iy = y * g.stride + kh - g.pad;
            if (iy < 0 || iy >= g.in_h) continue;
            float* dst = plane + iy * g.in_w;
            for (int64_t x = 0; x < ow; ++x) {
              const int64_t ix = x * g.stride + kw - g.pad;
              if (ix >= 0 && ix < g.in_w) dst[ix] += in[y * ow + x];
            }
          }
        }
      }
    }
  });
}

}  // namespace cham
