#include "tensor/im2col.h"

#include "tensor/thread_pool.h"

namespace cham {

void im2col(const float* img, const ConvGeometry& g, float* col) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t rows_per_c = g.kernel * g.kernel;
  // Channels own disjoint row blocks of the column matrix, so the channel
  // loop parallelises without any write overlap.
  parallel_for(0, g.in_c, [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      const float* plane = img + c * g.in_h * g.in_w;
      int64_t row = c * rows_per_c;
      for (int64_t kh = 0; kh < g.kernel; ++kh) {
        for (int64_t kw = 0; kw < g.kernel; ++kw, ++row) {
          float* out = col + row * oh * ow;
          for (int64_t y = 0; y < oh; ++y) {
            const int64_t iy = y * g.stride + kh - g.pad;
            if (iy < 0 || iy >= g.in_h) {
              for (int64_t x = 0; x < ow; ++x) out[y * ow + x] = 0.0f;
              continue;
            }
            const float* src = plane + iy * g.in_w;
            for (int64_t x = 0; x < ow; ++x) {
              const int64_t ix = x * g.stride + kw - g.pad;
              out[y * ow + x] =
                  (ix >= 0 && ix < g.in_w) ? src[ix] : 0.0f;
            }
          }
        }
      }
    }
  });
}

void col2im(const float* col, const ConvGeometry& g, float* img) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t rows_per_c = g.kernel * g.kernel;
  // Taps overlap across (kh, kw) within one channel but never across
  // channels; per-channel the accumulation order matches the serial loop.
  parallel_for(0, g.in_c, [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      float* plane = img + c * g.in_h * g.in_w;
      int64_t row = c * rows_per_c;
      for (int64_t kh = 0; kh < g.kernel; ++kh) {
        for (int64_t kw = 0; kw < g.kernel; ++kw, ++row) {
          const float* in = col + row * oh * ow;
          for (int64_t y = 0; y < oh; ++y) {
            const int64_t iy = y * g.stride + kh - g.pad;
            if (iy < 0 || iy >= g.in_h) continue;
            float* dst = plane + iy * g.in_w;
            for (int64_t x = 0; x < ow; ++x) {
              const int64_t ix = x * g.stride + kw - g.pad;
              if (ix >= 0 && ix < g.in_w) dst[ix] += in[y * ow + x];
            }
          }
        }
      }
    }
  });
}

}  // namespace cham
