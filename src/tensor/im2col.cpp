#include "tensor/im2col.h"

namespace cham {

void im2col(const float* img, const ConvGeometry& g, float* col) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_c; ++c) {
    const float* plane = img + c * g.in_h * g.in_w;
    for (int64_t kh = 0; kh < g.kernel; ++kh) {
      for (int64_t kw = 0; kw < g.kernel; ++kw, ++row) {
        float* out = col + row * oh * ow;
        for (int64_t y = 0; y < oh; ++y) {
          const int64_t iy = y * g.stride + kh - g.pad;
          if (iy < 0 || iy >= g.in_h) {
            for (int64_t x = 0; x < ow; ++x) out[y * ow + x] = 0.0f;
            continue;
          }
          const float* src = plane + iy * g.in_w;
          for (int64_t x = 0; x < ow; ++x) {
            const int64_t ix = x * g.stride + kw - g.pad;
            out[y * ow + x] =
                (ix >= 0 && ix < g.in_w) ? src[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* col, const ConvGeometry& g, float* img) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_c; ++c) {
    float* plane = img + c * g.in_h * g.in_w;
    for (int64_t kh = 0; kh < g.kernel; ++kh) {
      for (int64_t kw = 0; kw < g.kernel; ++kw, ++row) {
        const float* in = col + row * oh * ow;
        for (int64_t y = 0; y < oh; ++y) {
          const int64_t iy = y * g.stride + kh - g.pad;
          if (iy < 0 || iy >= g.in_h) continue;
          float* dst = plane + iy * g.in_w;
          for (int64_t x = 0; x < ow; ++x) {
            const int64_t ix = x * g.stride + kw - g.pad;
            if (ix >= 0 && ix < g.in_w) dst[ix] += in[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace cham
