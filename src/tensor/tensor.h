// Dense float32 tensor with value semantics.
//
// The whole framework runs on small models (MobileNetV1 at 32x32, width
// multiplier <= 0.5), so a simple contiguous row-major tensor with explicit
// copies is both fast enough and trivially correct. No views, no reference
// counting: a Tensor owns its storage.
//
// Storage comes from the workspace pool (tensor/workspace.h): freed buffers
// recycle through a size-class freelist, so the steady-state replay loop
// creates and destroys Tensors without touching the heap.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "tensor/workspace.h"
#include "util/check.h"

namespace cham {

// Shape of a tensor: up to 4 dimensions in practice (N, C, H, W), stored
// inline (a Shape used to heap-allocate a std::vector, which charged a
// malloc to every Tensor construction on the hot path). Dimensions are
// signed to avoid unsigned-arithmetic surprises.
class Shape {
 public:
  static constexpr int64_t kMaxRank = 6;

  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) {
    init({dims.begin(), dims.size()});
  }
  explicit Shape(std::span<const int64_t> dims) { init(dims); }
  explicit Shape(const std::vector<int64_t>& dims) {
    init({dims.data(), dims.size()});
  }

  int64_t rank() const { return rank_; }
  int64_t operator[](int64_t i) const {
    CHAM_DCHECK(i >= 0 && i < rank(),
                "Shape dim " + std::to_string(i) + " out of rank " +
                    std::to_string(rank()));
    return dims_[static_cast<size_t>(i)];
  }
  int64_t numel() const {
    int64_t n = 1;
    for (int64_t i = 0; i < rank_; ++i) n *= dims_[static_cast<size_t>(i)];
    return n;
  }
  std::span<const int64_t> dims() const {
    return {dims_, static_cast<size_t>(rank_)};
  }
  // Replaces one dimension (used to restamp the batch axis in concat/slice).
  void set_dim(int64_t i, int64_t v) {
    CHAM_CHECK(i >= 0 && i < rank(),
               "Shape::set_dim " + std::to_string(i) + " out of rank " +
                   std::to_string(rank()));
    dims_[static_cast<size_t>(i)] = v;
  }
  bool operator==(const Shape& o) const {
    if (rank_ != o.rank_) return false;
    for (int64_t i = 0; i < rank_; ++i) {
      if (dims_[static_cast<size_t>(i)] != o.dims_[static_cast<size_t>(i)]) {
        return false;
      }
    }
    return true;
  }
  bool operator!=(const Shape& o) const { return !(*this == o); }
  std::string to_string() const;

 private:
  void init(std::span<const int64_t> dims) {
    CHAM_CHECK(dims.size() <= static_cast<size_t>(kMaxRank),
               "Shape rank " + std::to_string(dims.size()) + " exceeds max " +
                   std::to_string(kMaxRank));
    rank_ = static_cast<int64_t>(dims.size());
    for (size_t i = 0; i < dims.size(); ++i) dims_[i] = dims[i];
  }

  int64_t dims_[kMaxRank] = {};
  int64_t rank_ = 0;
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape)
      : shape_(shape), data_(static_cast<size_t>(shape_.numel()), 0.0f) {}
  // Single-copy construction from existing values (e.g. a row slice of a
  // batched forward result).
  Tensor(Shape shape, std::span<const float> data)
      : shape_(shape), data_(data.begin(), data.end()) {
    CHAM_CHECK(static_cast<int64_t>(data_.size()) == shape_.numel(),
               "data size " + std::to_string(data_.size()) +
                   " != shape numel for " + shape_.to_string());
  }
  Tensor(Shape shape, const std::vector<float>& data)
      : Tensor(shape, std::span<const float>(data)) {}
  Tensor(Shape shape, ws::FloatBuffer data)
      : shape_(shape), data_(std::move(data)) {
    CHAM_CHECK(static_cast<int64_t>(data_.size()) == shape_.numel(),
               "data size " + std::to_string(data_.size()) +
                   " != shape numel for " + shape_.to_string());
  }
  Tensor(std::initializer_list<int64_t> dims) : Tensor(Shape(dims)) {}

  static Tensor zeros(Shape shape) { return Tensor(shape); }
  static Tensor full(Shape shape, float value);
  static Tensor scalar(float value) { return full(Shape{{1}}, value); }
  // 1-D tensor from values.
  static Tensor from(std::initializer_list<float> values);

  const Shape& shape() const { return shape_; }
  int64_t numel() const { return shape_.numel(); }
  int64_t dim(int64_t i) const { return shape_[i]; }
  int64_t rank() const { return shape_.rank(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  // Element access bounds are CHAM_DCHECKed: free in the default cheap tier
  // (same codegen as the seed Release build), enforced under
  // -DCHAM_CHECKS=full where out-of-range access throws CheckError instead
  // of silently reading adjacent storage.
  float& operator[](int64_t i) {
    CHAM_DCHECK(i >= 0 && i < numel(),
                "flat index " + std::to_string(i) + " out of range for " +
                    shape_.to_string());
    return data_[static_cast<size_t>(i)];
  }
  float operator[](int64_t i) const {
    CHAM_DCHECK(i >= 0 && i < numel(),
                "flat index " + std::to_string(i) + " out of range for " +
                    shape_.to_string());
    return data_[static_cast<size_t>(i)];
  }

  // 2-D indexed access (rows x cols).
  float& at(int64_t r, int64_t c) {
    CHAM_DCHECK(rank() == 2, "2-D at() on " + shape_.to_string());
    CHAM_DCHECK(r >= 0 && r < dim(0) && c >= 0 && c < dim(1),
                "(" + std::to_string(r) + ", " + std::to_string(c) +
                    ") out of range for " + shape_.to_string());
    return data_[static_cast<size_t>(r * dim(1) + c)];
  }
  float at(int64_t r, int64_t c) const {
    CHAM_DCHECK(rank() == 2, "2-D at() on " + shape_.to_string());
    CHAM_DCHECK(r >= 0 && r < dim(0) && c >= 0 && c < dim(1),
                "(" + std::to_string(r) + ", " + std::to_string(c) +
                    ") out of range for " + shape_.to_string());
    return data_[static_cast<size_t>(r * dim(1) + c)];
  }
  // 4-D indexed access (NCHW).
  float& at(int64_t n, int64_t c, int64_t h, int64_t w) {
    CHAM_DCHECK(rank() == 4, "4-D at() on " + shape_.to_string());
    CHAM_DCHECK(n >= 0 && n < dim(0) && c >= 0 && c < dim(1) && h >= 0 &&
                    h < dim(2) && w >= 0 && w < dim(3),
                "NCHW index out of range for " + shape_.to_string());
    return data_[static_cast<size_t>(
        ((n * dim(1) + c) * dim(2) + h) * dim(3) + w)];
  }
  float at(int64_t n, int64_t c, int64_t h, int64_t w) const {
    CHAM_DCHECK(rank() == 4, "4-D at() on " + shape_.to_string());
    CHAM_DCHECK(n >= 0 && n < dim(0) && c >= 0 && c < dim(1) && h >= 0 &&
                    h < dim(2) && w >= 0 && w < dim(3),
                "NCHW index out of range for " + shape_.to_string());
    return data_[static_cast<size_t>(
        ((n * dim(1) + c) * dim(2) + h) * dim(3) + w)];
  }

  // Returns a copy with the same data but a different shape (numel preserved).
  Tensor reshaped(Shape new_shape) const;

  // Fill every element with `value`.
  void fill(float value);

  // In-place arithmetic with broadcasting disabled: shapes must match exactly.
  Tensor& operator+=(const Tensor& o);
  Tensor& operator-=(const Tensor& o);
  Tensor& operator*=(float s);

  // Row `r` of a 2-D tensor as a span of length dim(1).
  std::span<const float> row(int64_t r) const {
    CHAM_DCHECK(rank() == 2 && r >= 0 && r < dim(0),
                "row " + std::to_string(r) + " of " + shape_.to_string());
    return {data_.data() + static_cast<size_t>(r * dim(1)),
            static_cast<size_t>(dim(1))};
  }
  std::span<float> row(int64_t r) {
    CHAM_DCHECK(rank() == 2 && r >= 0 && r < dim(0),
                "row " + std::to_string(r) + " of " + shape_.to_string());
    return {data_.data() + static_cast<size_t>(r * dim(1)),
            static_cast<size_t>(dim(1))};
  }

  std::string to_string(int64_t max_elems = 16) const;

 private:
  Shape shape_;
  ws::FloatBuffer data_;
};

}  // namespace cham
