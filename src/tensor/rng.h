// Deterministic, explicitly-seeded random number generation.
//
// Every stochastic component in the framework (weight init, stream ordering,
// buffer replacement, domain transforms) takes an Rng by reference so that a
// single seed fully determines an experiment. xoshiro256** is small, fast and
// has well-understood statistical quality.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

namespace cham {

// One SplitMix64 step: the standard finaliser used to both spread seeds over
// generator state and to derive independent sub-seeds.
inline uint64_t splitmix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Derives an independent seed for stream `stream_id` from `base`. Each
// (base, id) pair lands in an unrelated region of the SplitMix64 sequence,
// so per-stream generators are decorrelated no matter how ids are assigned —
// the serving runtime uses this to give every session its own RNG stream
// whose draws do not depend on admission order.
inline uint64_t split_seed(uint64_t base, uint64_t stream_id) {
  return splitmix64(splitmix64(base) ^
                    splitmix64(stream_id * 0xD1B54A32D192ED03ull + 1));
}

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(uint64_t seed) {
    // SplitMix64 to spread the seed over the state.
    uint64_t x = seed;
    for (auto& si : s_) {
      si = splitmix64(x);
      x += 0x9E3779B97F4A7C15ull;
    }
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }
  // Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }
  float uniform_f(float lo, float hi) {
    return static_cast<float>(uniform(lo, hi));
  }

  // Uniform integer in [0, n). n must be > 0. Lemire's multiply-shift with
  // rejection: `next_u64() % n` is modulo-biased for non-power-of-two n,
  // which skewed every buffer eviction, shuffle and
  // sample_without_replacement that funnels through here. The fast path
  // (no rejection) costs one 128-bit multiply; the rejection branch is taken
  // with probability < n / 2^64.
  int64_t uniform_int(int64_t n) {
    const uint64_t un = static_cast<uint64_t>(n);
    uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * un;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < un) {
      // 2^64 mod n, computed without 128-bit division.
      const uint64_t threshold = (0 - un) % un;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * un;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<int64_t>(static_cast<uint64_t>(m >> 64));
  }

  // Standard normal via Box-Muller (no cached spare: simpler, still fast).
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958648 * u2);
  }
  double normal(double mean, double stddev) { return mean + stddev * normal(); }
  float normal_f(float mean, float stddev) {
    return static_cast<float>(normal(mean, stddev));
  }

  bool bernoulli(double p) { return uniform() < p; }

  // Sample an index from unnormalised non-negative weights. Returns -1 only
  // if all weights are zero (caller decides fallback).
  int64_t sample_weighted(std::span<const double> weights) {
    double total = 0;
    for (double w : weights) total += w;
    if (total <= 0) return -1;
    double r = uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0) return static_cast<int64_t>(i);
    }
    return static_cast<int64_t>(weights.size()) - 1;
  }

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (int64_t i = static_cast<int64_t>(v.size()) - 1; i > 0; --i) {
      std::swap(v[static_cast<size_t>(i)],
                v[static_cast<size_t>(uniform_int(i + 1))]);
    }
  }

  // Sample k distinct indices from [0, n) (k <= n), order unspecified.
  std::vector<int64_t> sample_without_replacement(int64_t n, int64_t k);

  // Raw generator state, for checkpointing: a restored Rng continues the
  // exact draw sequence of the saved one (bit-identical resume is part of
  // the session-eviction contract in src/serve/).
  std::array<uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const std::array<uint64_t, 4>& s) {
    for (size_t i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

inline std::vector<int64_t> Rng::sample_without_replacement(int64_t n,
                                                            int64_t k) {
  if (k >= n) {
    std::vector<int64_t> all(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) all[static_cast<size_t>(i)] = i;
    return all;
  }
  // Partial Fisher-Yates over an index vector.
  std::vector<int64_t> idx(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) idx[static_cast<size_t>(i)] = i;
  for (int64_t i = 0; i < k; ++i) {
    const int64_t j = i + uniform_int(n - i);
    std::swap(idx[static_cast<size_t>(i)], idx[static_cast<size_t>(j)]);
  }
  idx.resize(static_cast<size_t>(k));
  return idx;
}

}  // namespace cham
