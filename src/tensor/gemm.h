// Blocked single-precision GEMM and the matrix primitives the NN layers need.
//
// C (MxN) = alpha * A (MxK) @ B (KxN) + beta * C. Row-major, contiguous.
// A register-blocked micro-kernel with K-panel packing gives a few GFLOP/s on
// one core, enough for the 32x32 MobileNet workloads in this repo.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace cham {

void gemm(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
          const float* b, float beta, float* c);

// C (MxN) += A^T (A is KxM) @ B (KxN). Used by backward passes.
void gemm_at_b(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
               const float* b, float beta, float* c);

// C (MxN) += A (MxK) @ B^T (B is NxK). Used by backward passes.
void gemm_a_bt(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
               const float* b, float beta, float* c);

// Convenience wrappers on Tensors (2-D only, shapes asserted).
Tensor matmul(const Tensor& a, const Tensor& b);

}  // namespace cham
