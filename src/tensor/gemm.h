// Blocked single-precision GEMM and the matrix primitives the NN layers need.
//
// C (MxN) = alpha * A (MxK) @ B (KxN) + beta * C. Row-major, contiguous.
// All three kernels share one packed register-tiled core: operands are
// packed into contiguous zero-padded panels (alpha folded into the A pack)
// and a branch-free micro-kernel accumulates a 4x16 tile (8x4 for narrow
// outputs) with one fused multiply-add per element per K step. Transposed
// operands differ only in how the pack reads memory, so gemm_at_b and
// gemm_a_bt run at the same rate as gemm.
//
// Determinism contract: every C element accumulates in p-ascending order in
// a single fma chain, chained exactly across K strips through its C slot.
// The order never depends on the thread partition or tile grouping, so
// results are bit-identical for every thread count and bit-identical to the
// serial reference kernels in cham::ref.
//
// SIMD dispatch is compile-time via CHAM_SIMD (CMake: generic|avx2|neon;
// default auto-detects from the target arch). Intrinsic kernels cover full
// tiles only and perform the same per-lane fused multiply-add as the scalar
// path, preserving bit-identity across CHAM_SIMD settings on a given
// fma-capable target.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace cham {

void gemm(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
          const float* b, float beta, float* c);

// C (MxN) += A^T (A is KxM) @ B (KxN). Used by backward passes.
void gemm_at_b(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
               const float* b, float beta, float* c);

// C (MxN) += A (MxK) @ B^T (B is NxK). Used by backward passes.
void gemm_a_bt(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
               const float* b, float beta, float* c);

// Gather-source kernels. Same packed core, same pack order, same fma
// chains — only the pack's load addresses differ — so results are
// bit-identical to stacking the gathered operand into a dense panel and
// calling the plain kernel. The caller owns the pointer arrays and the
// gathered storage; both must stay valid for the duration of the call
// (worker threads read them inside parallel_for).
//
// gemm_a_bt with a row-gathered A: logical row i of A is the k contiguous
// floats at a_rows[i]. Backs Linear::forward over replay rows gathered
// from ST/LT/incoming latent storage.
void gemm_gather_a_bt(int64_t m, int64_t n, int64_t k, float alpha,
                      const float* const* a_rows, const float* b, float beta,
                      float* c);

// gemm_at_b with a row-gathered B: logical row p of B is the n contiguous
// floats at b_rows[p]. Backs Linear's weight gradient over gathered
// samples.
void gemm_at_b_gather_b(int64_t m, int64_t n, int64_t k, float alpha,
                        const float* a, const float* const* b_rows,
                        float beta, float* c);

// gemm with a column-gathered B: logical element (p, j) of B is
// b_cols[j][p * b_col_stride]. Backs the im2col-free pointwise-conv
// forward over gathered samples (column (sample, pixel) reads the sample's
// latent plane in place, stride = pixels per channel).
void gemm_gather_cols(int64_t m, int64_t n, int64_t k, float alpha,
                      const float* a, const float* const* b_cols,
                      int64_t b_col_stride, float beta, float* c);

// Convenience wrappers on Tensors (2-D only, shapes asserted).
Tensor matmul(const Tensor& a, const Tensor& b);

// Which micro-kernel set this build dispatches to: "avx2", "neon" or
// "generic". Reported by bench_kernels so BENCH_kernels.json records what
// was measured.
const char* gemm_simd_variant();

namespace ref {

// Serial scalar reference kernels: a plain triple loop with the same
// per-element fma chain as the packed kernels. They exist as the ground
// truth for the bit-identity tests (test_gemm) and as the baseline the
// kernel benchmarks measure speedups against. Never used on the hot path.
void gemm(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
          const float* b, float beta, float* c);
void gemm_at_b(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
               const float* b, float beta, float* c);
void gemm_a_bt(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
               const float* b, float beta, float* c);

}  // namespace ref

}  // namespace cham
