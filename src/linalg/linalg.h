// Small dense linear algebra: just enough for streaming LDA (shrinkage
// precision matrix) and diagnostics. Matrices are 2-D cham::Tensor.
#pragma once

#include "tensor/tensor.h"

namespace cham::linalg {

Tensor identity(int64_t n);
Tensor transpose(const Tensor& a);

// Solves A x = b for square A via partial-pivot LU. Returns false if A is
// numerically singular (pivot below tolerance); x is untouched in that case.
bool lu_solve(const Tensor& a, const Tensor& b, Tensor& x);

// Inverse of a square matrix via Gauss-Jordan with partial pivoting.
// Returns false on singularity.
bool inverse(const Tensor& a, Tensor& out);

// Ridge-regularised (pseudo-)inverse: (A + lambda I)^-1 for symmetric A.
// This is exactly the operation SLDA performs on its covariance estimate.
// Always succeeds for lambda > 0 on a PSD input.
Tensor ridge_inverse(const Tensor& a, double lambda);

// Cholesky factorisation of a symmetric positive-definite matrix (lower
// triangular L with A = L L^T). Returns false if A is not PD.
bool cholesky(const Tensor& a, Tensor& l);

// Frobenius norm of A - B.
double frobenius_diff(const Tensor& a, const Tensor& b);

}  // namespace cham::linalg
