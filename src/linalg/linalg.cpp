#include "linalg/linalg.h"

#include <cmath>
#include <vector>

#include "util/check.h"

namespace cham::linalg {
namespace {
constexpr double kPivotTol = 1e-12;
}

Tensor identity(int64_t n) {
  Tensor eye({n, n});
  for (int64_t i = 0; i < n; ++i) eye.at(i, i) = 1.0f;
  return eye;
}

Tensor transpose(const Tensor& a) {
  CHAM_CHECK(a.rank() == 2, "transpose of " + a.shape().to_string());
  Tensor t({a.dim(1), a.dim(0)});
  for (int64_t i = 0; i < a.dim(0); ++i) {
    for (int64_t j = 0; j < a.dim(1); ++j) t.at(j, i) = a.at(i, j);
  }
  return t;
}

bool lu_solve(const Tensor& a, const Tensor& b, Tensor& x) {
  CHAM_CHECK(a.rank() == 2 && a.dim(0) == a.dim(1),
             "lu_solve of non-square " + a.shape().to_string());
  const int64_t n = a.dim(0);
  CHAM_CHECK(b.numel() == n, "rhs numel " + std::to_string(b.numel()) +
                                 " != n " + std::to_string(n));

  // Work in double for stability: these systems are tiny (latent dim ~512).
  std::vector<double> m(static_cast<size_t>(n * n));
  std::vector<double> rhs(static_cast<size_t>(n));
  for (int64_t i = 0; i < n * n; ++i) m[static_cast<size_t>(i)] = a[i];
  for (int64_t i = 0; i < n; ++i) rhs[static_cast<size_t>(i)] = b[i];

  std::vector<int64_t> perm(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;

  for (int64_t k = 0; k < n; ++k) {
    int64_t piv = k;
    double best = std::abs(m[static_cast<size_t>(k * n + k)]);
    for (int64_t i = k + 1; i < n; ++i) {
      const double v = std::abs(m[static_cast<size_t>(i * n + k)]);
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best < kPivotTol) return false;
    if (piv != k) {
      for (int64_t j = 0; j < n; ++j)
        std::swap(m[static_cast<size_t>(k * n + j)],
                  m[static_cast<size_t>(piv * n + j)]);
      std::swap(rhs[static_cast<size_t>(k)], rhs[static_cast<size_t>(piv)]);
    }
    const double pivot = m[static_cast<size_t>(k * n + k)];
    for (int64_t i = k + 1; i < n; ++i) {
      const double f = m[static_cast<size_t>(i * n + k)] / pivot;
      if (f == 0.0) continue;
      m[static_cast<size_t>(i * n + k)] = 0.0;
      for (int64_t j = k + 1; j < n; ++j)
        m[static_cast<size_t>(i * n + j)] -= f * m[static_cast<size_t>(k * n + j)];
      rhs[static_cast<size_t>(i)] -= f * rhs[static_cast<size_t>(k)];
    }
  }
  // Back substitution.
  std::vector<double> sol(static_cast<size_t>(n));
  for (int64_t i = n - 1; i >= 0; --i) {
    double acc = rhs[static_cast<size_t>(i)];
    for (int64_t j = i + 1; j < n; ++j)
      acc -= m[static_cast<size_t>(i * n + j)] * sol[static_cast<size_t>(j)];
    sol[static_cast<size_t>(i)] = acc / m[static_cast<size_t>(i * n + i)];
  }
  x = Tensor(b.shape());
  for (int64_t i = 0; i < n; ++i)
    x[i] = static_cast<float>(sol[static_cast<size_t>(i)]);
  return true;
}

bool inverse(const Tensor& a, Tensor& out) {
  CHAM_CHECK(a.rank() == 2 && a.dim(0) == a.dim(1),
             "inverse of non-square " + a.shape().to_string());
  const int64_t n = a.dim(0);
  std::vector<double> m(static_cast<size_t>(n * 2 * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j)
      m[static_cast<size_t>(i * 2 * n + j)] = a.at(i, j);
    m[static_cast<size_t>(i * 2 * n + n + i)] = 1.0;
  }
  for (int64_t k = 0; k < n; ++k) {
    int64_t piv = k;
    double best = std::abs(m[static_cast<size_t>(k * 2 * n + k)]);
    for (int64_t i = k + 1; i < n; ++i) {
      const double v = std::abs(m[static_cast<size_t>(i * 2 * n + k)]);
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best < kPivotTol) return false;
    if (piv != k) {
      for (int64_t j = 0; j < 2 * n; ++j)
        std::swap(m[static_cast<size_t>(k * 2 * n + j)],
                  m[static_cast<size_t>(piv * 2 * n + j)]);
    }
    const double pivot = m[static_cast<size_t>(k * 2 * n + k)];
    for (int64_t j = 0; j < 2 * n; ++j)
      m[static_cast<size_t>(k * 2 * n + j)] /= pivot;
    for (int64_t i = 0; i < n; ++i) {
      if (i == k) continue;
      const double f = m[static_cast<size_t>(i * 2 * n + k)];
      if (f == 0.0) continue;
      for (int64_t j = 0; j < 2 * n; ++j)
        m[static_cast<size_t>(i * 2 * n + j)] -=
            f * m[static_cast<size_t>(k * 2 * n + j)];
    }
  }
  out = Tensor({n, n});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j)
      out.at(i, j) = static_cast<float>(m[static_cast<size_t>(i * 2 * n + n + j)]);
  }
  return true;
}

Tensor ridge_inverse(const Tensor& a, double lambda) {
  CHAM_CHECK(a.rank() == 2 && a.dim(0) == a.dim(1),
             "ridge_inverse of non-square " + a.shape().to_string());
  const int64_t n = a.dim(0);
  Tensor reg = a;
  for (int64_t i = 0; i < n; ++i)
    reg.at(i, i) += static_cast<float>(lambda);
  Tensor inv;
  if (!inverse(reg, inv)) {
    // Extremely ill-conditioned input even after ridge: fall back to a
    // heavier ridge. Guaranteed to terminate because diag dominance grows.
    double l = std::max(lambda, 1e-6);
    do {
      l *= 10.0;
      reg = a;
      for (int64_t i = 0; i < n; ++i) reg.at(i, i) += static_cast<float>(l);
    } while (!inverse(reg, inv) && l < 1e12);
  }
  return inv;
}

bool cholesky(const Tensor& a, Tensor& l) {
  CHAM_CHECK(a.rank() == 2 && a.dim(0) == a.dim(1),
             "cholesky of non-square " + a.shape().to_string());
  const int64_t n = a.dim(0);
  l = Tensor({n, n});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      double acc = a.at(i, j);
      for (int64_t k = 0; k < j; ++k)
        acc -= double(l.at(i, k)) * double(l.at(j, k));
      if (i == j) {
        if (acc <= 0) return false;
        l.at(i, i) = static_cast<float>(std::sqrt(acc));
      } else {
        l.at(i, j) = static_cast<float>(acc / l.at(j, j));
      }
    }
  }
  return true;
}

double frobenius_diff(const Tensor& a, const Tensor& b) {
  CHAM_CHECK_SHAPE(a.shape(), b.shape());
  double acc = 0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const double d = double(a[i]) - double(b[i]);
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace cham::linalg
