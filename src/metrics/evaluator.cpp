#include "metrics/evaluator.h"

#include <algorithm>

namespace cham::metrics {

AccuracyReport evaluate(core::ContinualLearner& learner,
                        const std::vector<data::ImageKey>& keys,
                        std::span<const int64_t> preferred) {
  AccuracyReport rep;
  if (keys.empty()) return rep;
  const auto preds = learner.predict(keys);

  int64_t max_class = 0;
  for (const auto& k : keys) max_class = std::max<int64_t>(max_class, k.class_id);
  std::vector<int64_t> correct(static_cast<size_t>(max_class + 1), 0);
  std::vector<int64_t> total(static_cast<size_t>(max_class + 1), 0);

  int64_t hit = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    const int64_t y = keys[i].class_id;
    ++total[static_cast<size_t>(y)];
    if (preds[i] == y) {
      ++hit;
      ++correct[static_cast<size_t>(y)];
    }
  }
  rep.acc_all = 100.0 * static_cast<double>(hit) /
                static_cast<double>(keys.size());

  rep.per_class.resize(total.size(), 0.0);
  for (size_t c = 0; c < total.size(); ++c) {
    rep.per_class[c] =
        total[c] > 0 ? 100.0 * static_cast<double>(correct[c]) /
                           static_cast<double>(total[c])
                     : 0.0;
  }

  if (!preferred.empty()) {
    int64_t phit = 0, ptotal = 0;
    for (int64_t c : preferred) {
      if (c <= max_class) {
        phit += correct[static_cast<size_t>(c)];
        ptotal += total[static_cast<size_t>(c)];
      }
    }
    rep.acc_preferred =
        ptotal > 0 ? 100.0 * static_cast<double>(phit) /
                         static_cast<double>(ptotal)
                   : 0.0;
  }
  return rep;
}

}  // namespace cham::metrics
