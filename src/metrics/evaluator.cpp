#include "metrics/evaluator.h"

#include <algorithm>
#include <atomic>

#include "tensor/thread_pool.h"

namespace cham::metrics {

AccuracyReport evaluate(core::ContinualLearner& learner,
                        const std::vector<data::ImageKey>& keys,
                        std::span<const int64_t> preferred) {
  AccuracyReport rep;
  if (keys.empty()) return rep;
  // predict() itself batches through the parallel tensor backend; the
  // per-key tally below splits across the pool with atomic counters
  // (integer sums are order-independent, so this stays deterministic).
  // All accesses are relaxed (ordering policy case 3, util/sync.h): the
  // parallel_for join barrier synchronises before any read below, so the
  // atomics only need atomicity, never ordering.
  const auto preds = learner.predict(keys);

  int64_t max_class = 0;
  for (const auto& k : keys) max_class = std::max<int64_t>(max_class, k.class_id);
  std::vector<std::atomic<int64_t>> correct(static_cast<size_t>(max_class + 1));
  std::vector<std::atomic<int64_t>> total(static_cast<size_t>(max_class + 1));

  std::atomic<int64_t> hit{0};
  parallel_for(
      0, static_cast<int64_t>(keys.size()),
      [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          const int64_t y = keys[static_cast<size_t>(i)].class_id;
          total[static_cast<size_t>(y)].fetch_add(1,
                                                  std::memory_order_relaxed);
          if (preds[static_cast<size_t>(i)] == y) {
            hit.fetch_add(1, std::memory_order_relaxed);
            correct[static_cast<size_t>(y)].fetch_add(
                1, std::memory_order_relaxed);
          }
        }
      },
      /*grain=*/1024);
  rep.acc_all = 100.0 *
                static_cast<double>(hit.load(std::memory_order_relaxed)) /
                static_cast<double>(keys.size());

  rep.per_class.resize(total.size(), 0.0);
  for (size_t c = 0; c < total.size(); ++c) {
    const int64_t t = total[c].load(std::memory_order_relaxed);
    const int64_t k = correct[c].load(std::memory_order_relaxed);
    rep.per_class[c] =
        t > 0 ? 100.0 * static_cast<double>(k) / static_cast<double>(t) : 0.0;
  }

  if (!preferred.empty()) {
    int64_t phit = 0, ptotal = 0;
    for (int64_t c : preferred) {
      if (c <= max_class) {
        phit += correct[static_cast<size_t>(c)].load(std::memory_order_relaxed);
        ptotal += total[static_cast<size_t>(c)].load(std::memory_order_relaxed);
      }
    }
    rep.acc_preferred =
        ptotal > 0 ? 100.0 * static_cast<double>(phit) /
                         static_cast<double>(ptotal)
                   : 0.0;
  }
  return rep;
}

}  // namespace cham::metrics
