// Terminal scatter/line chart for the figure-reproducing benches: renders
// multiple (x, y) series on a shared log-x grid so "accuracy vs memory"
// plots read directly off the bench output, no plotting stack required.
#pragma once

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace cham::metrics {

struct ChartSeries {
  std::string name;
  char marker = '*';
  std::vector<double> x;
  std::vector<double> y;
};

class AsciiChart {
 public:
  AsciiChart(int width, int height, bool log_x = false)
      : width_(width), height_(height), log_x_(log_x) {}

  void add(ChartSeries series) { series_.push_back(std::move(series)); }

  std::string render(const std::string& x_label,
                     const std::string& y_label) const {
    double x_lo = 1e300, x_hi = -1e300, y_lo = 1e300, y_hi = -1e300;
    for (const auto& s : series_) {
      for (size_t i = 0; i < s.x.size(); ++i) {
        const double x = tx(s.x[i]);
        x_lo = std::min(x_lo, x);
        x_hi = std::max(x_hi, x);
        y_lo = std::min(y_lo, s.y[i]);
        y_hi = std::max(y_hi, s.y[i]);
      }
    }
    if (x_hi <= x_lo) x_hi = x_lo + 1;
    if (y_hi <= y_lo) y_hi = y_lo + 1;

    std::vector<std::string> grid(
        static_cast<size_t>(height_),
        std::string(static_cast<size_t>(width_), ' '));
    for (const auto& s : series_) {
      for (size_t i = 0; i < s.x.size(); ++i) {
        const int col = static_cast<int>(std::lround(
            (tx(s.x[i]) - x_lo) / (x_hi - x_lo) * (width_ - 1)));
        const int row = static_cast<int>(std::lround(
            (s.y[i] - y_lo) / (y_hi - y_lo) * (height_ - 1)));
        grid[static_cast<size_t>(height_ - 1 - row)]
            [static_cast<size_t>(col)] = s.marker;
      }
    }

    std::string out = y_label + "\n";
    char buf[32];
    for (int r = 0; r < height_; ++r) {
      const double y =
          y_hi - (y_hi - y_lo) * static_cast<double>(r) / (height_ - 1);
      std::snprintf(buf, sizeof(buf), "%7.1f |", y);
      out += buf;
      out += grid[static_cast<size_t>(r)];
      out += "\n";
    }
    out += "        +" + std::string(static_cast<size_t>(width_), '-') +
           "  " + x_label + (log_x_ ? " (log scale)" : "") + "\n";
    out += "  legend:";
    for (const auto& s : series_) {
      out += " [";
      out += s.marker;
      out += "] " + s.name;
    }
    out += "\n";
    return out;
  }

 private:
  double tx(double x) const {
    return log_x_ ? std::log10(std::max(x, 1e-9)) : x;
  }
  int width_, height_;
  bool log_x_;
  std::vector<ChartSeries> series_;
};

}  // namespace cham::metrics
