// Mean / standard deviation aggregation for multi-seed experiment cells
// (the "mean ± std across ten runs" of Table I).
#pragma once

#include <cmath>
#include <vector>

namespace cham::metrics {

class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
  }
  int64_t count() const { return n_; }
  double mean() const { return mean_; }
  // Sample standard deviation (n-1); 0 for fewer than two samples.
  double stddev() const {
    return n_ > 1 ? std::sqrt(m2_ / static_cast<double>(n_ - 1)) : 0.0;
  }

 private:
  int64_t n_ = 0;
  double mean_ = 0, m2_ = 0;
};

inline RunningStat aggregate(const std::vector<double>& xs) {
  RunningStat s;
  for (double x : xs) s.add(x);
  return s;
}

}  // namespace cham::metrics
