// Experiment harness shared by benches, examples and integration tests.
//
// Owns the full pipeline the paper's evaluation needs:
//   1. build MobileNetV1 for the dataset and PRETRAIN it on a disjoint
//      synthetic "generic" distribution (the ImageNet-pretraining stand-in;
//      cached on disk so it runs once per configuration),
//   2. split at the latent layer (conv 21/27) into frozen f + head template,
//   3. hand every learner a LearnerEnv with a shared LatentCache over f and
//      a head_factory that clones the pretrained head with a freshly
//      initialised classifier,
//   4. drive a learner over a DomainIncrementalStream and evaluate Acc_all.
#pragma once

#include <memory>

#include "core/learner.h"
#include "data/stream.h"
#include "metrics/evaluator.h"
#include "nn/mobilenet.h"

namespace cham::metrics {

struct ExperimentConfig {
  data::DatasetConfig data;
  data::StreamConfig stream;
  nn::MobileNetConfig model;

  // Pretraining (the "ImageNet" stand-in).
  int64_t pretrain_classes_seed_offset = 0xABCD;  // disjoint appearance
  int64_t pretrain_num_classes = 80;  // richer feature diversity than task
  int64_t pretrain_instances = 4;
  // Pretraining spans several domains so the frozen features are domain-
  // robust — the regime the paper's latent methods rely on (SLDA reaches
  // 77% on CORe50 with no replay at all).
  int64_t pretrain_domains = 6;
  int64_t pretrain_epochs = 8;
  float pretrain_lr = 0.02f;
  int64_t pretrain_batch = 16;
  // Opt-in train-time augmentation (data/augment.h) for extra backbone
  // robustness; off by default to keep the benchmark protocol fixed.
  bool pretrain_augment = false;
  std::string cache_dir = "/tmp";

  float learner_lr = 0.05f;
};

ExperimentConfig core50_experiment();
ExperimentConfig openloris_experiment();

// A prepared environment: frozen backbone + latent cache + head template.
class Experiment {
 public:
  explicit Experiment(ExperimentConfig cfg);

  // Environment for constructing learners. Valid as long as *this lives.
  core::LearnerEnv env();

  const ExperimentConfig& config() const { return cfg_; }
  const Shape& latent_shape() const { return latent_shape_; }
  int64_t f_macs() const { return f_macs_; }
  data::LatentCache& latents() { return *latents_; }
  nn::Sequential& backbone() { return *f_; }
  const nn::Sequential& head_template() const { return *g_template_; }

  // Runs `learner` over `stream` (observe every batch).
  void run(core::ContinualLearner& learner,
           const data::DomainIncrementalStream& stream);
  // Scenario-agnostic variant (Class-IL streams, custom batch lists).
  void run(core::ContinualLearner& learner,
           const std::vector<data::Batch>& batches);

  // Final Acc_all over the full test set.
  AccuracyReport evaluate(core::ContinualLearner& learner);

  // Precomputes latents for a stream + the test set (one pass over f).
  void warm_latents(const data::DomainIncrementalStream& stream);
  void warm_latents(const std::vector<data::Batch>& batches);

 private:
  void pretrain();
  std::string cache_path() const;
  // Fresh full pipeline carrying the pretrained f + g_template weights.
  std::unique_ptr<nn::Sequential> join_pretrained() const;

  ExperimentConfig cfg_;
  std::unique_ptr<nn::Sequential> f_;
  std::unique_ptr<nn::Sequential> g_template_;
  Shape latent_shape_;
  int64_t f_macs_ = 0;
  std::unique_ptr<data::LatentCache> latents_;
  std::vector<data::ImageKey> test_keys_;
};

}  // namespace cham::metrics
