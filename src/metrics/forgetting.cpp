#include "metrics/forgetting.h"

#include <algorithm>

namespace cham::metrics {

ForgettingTracker::ForgettingTracker(const data::DatasetConfig& cfg)
    : cfg_(cfg) {
  domain_test_keys_.resize(static_cast<size_t>(cfg.num_domains));
  for (int32_t d = 0; d < cfg.num_domains; ++d) {
    for (int32_t c = 0; c < cfg.num_classes; ++c) {
      for (int32_t i = 0; i < cfg.test_instances; ++i) {
        domain_test_keys_[static_cast<size_t>(d)].push_back(
            {c, d, i, /*test=*/true});
      }
    }
  }
}

const std::vector<double>& ForgettingTracker::record_after_domain(
    core::ContinualLearner& learner, int64_t trained_domain) {
  std::vector<double> row;
  row.reserve(domain_test_keys_.size());
  for (const auto& keys : domain_test_keys_) {
    const auto preds = learner.predict(keys);
    int64_t hit = 0;
    for (size_t i = 0; i < keys.size(); ++i) {
      hit += preds[i] == keys[i].class_id;
    }
    row.push_back(100.0 * static_cast<double>(hit) /
                  static_cast<double>(keys.size()));
  }
  trained_domains_.push_back(trained_domain);
  rows_.push_back(std::move(row));
  return rows_.back();
}

double ForgettingTracker::final_average() const {
  if (rows_.empty()) return 0;
  const auto& last = rows_.back();
  double acc = 0;
  for (double v : last) acc += v;
  return acc / static_cast<double>(last.size());
}

double ForgettingTracker::backward_transfer() const {
  if (rows_.size() < 2) return 0;
  const auto& last = rows_.back();
  double acc = 0;
  int64_t count = 0;
  for (size_t i = 0; i + 1 < rows_.size(); ++i) {
    const auto d = static_cast<size_t>(trained_domains_[i]);
    acc += last[d] - rows_[i][d];
    ++count;
  }
  return count > 0 ? acc / static_cast<double>(count) : 0;
}

double ForgettingTracker::forward_transfer() const {
  if (rows_.size() < 2) return 0;
  // Mean accuracy on domains not yet trained, averaged over rows before
  // the last, relative to the same domains in the first row.
  double acc = 0;
  int64_t count = 0;
  for (size_t i = 0; i + 1 < rows_.size(); ++i) {
    for (size_t j = i + 1; j < rows_[i].size() && j < rows_.size(); ++j) {
      const auto d = static_cast<size_t>(trained_domains_[j]);
      acc += rows_[i][d] - rows_.front()[d];
      ++count;
    }
  }
  return count > 0 ? acc / static_cast<double>(count) : 0;
}

double ForgettingTracker::max_forgetting() const {
  if (rows_.size() < 2) return 0;
  const auto& last = rows_.back();
  double worst = 0;
  for (size_t i = 0; i + 1 < rows_.size(); ++i) {
    const auto d = static_cast<size_t>(trained_domains_[i]);
    worst = std::max(worst, rows_[i][d] - last[d]);
  }
  return worst;
}

}  // namespace cham::metrics
