// Continual-learning forgetting diagnostics beyond the paper's Acc_all:
// the per-domain accuracy matrix R (R[i][j] = accuracy on domain j's test
// split after training through domain i) and the standard derived metrics,
// Backward Transfer (BWT) and Forward Transfer (FWT) from Lopez-Paz &
// Ranzato (GEM, NeurIPS 2017).
//
// Used by the streaming_monitor example and the forgetting tests; benches
// that only need the paper's headline metric keep using evaluate().
#pragma once

#include <vector>

#include "core/learner.h"
#include "data/dataset.h"

namespace cham::metrics {

class ForgettingTracker {
 public:
  explicit ForgettingTracker(const data::DatasetConfig& cfg);

  // Evaluates `learner` on every domain's test split; call once after each
  // training domain completes. Returns this row of the matrix (accuracy in
  // percent per evaluated domain).
  const std::vector<double>& record_after_domain(
      core::ContinualLearner& learner, int64_t trained_domain);

  // R[i][j]; rows appear in the order record_after_domain was called.
  const std::vector<std::vector<double>>& matrix() const { return rows_; }

  // Average final accuracy over all domains (last row mean) — matches
  // Acc_all when test splits are balanced.
  double final_average() const;

  // BWT = mean_j<last ( R[last][j] - R[j][j] ): negative means forgetting.
  double backward_transfer() const;

  // Average accuracy on not-yet-seen domains relative to the first row —
  // how much learning domain i helps future domains (domain similarity).
  double forward_transfer() const;

  // Largest single-domain drop from its just-trained accuracy (max
  // forgetting, the worst-case view BWT averages away).
  double max_forgetting() const;

 private:
  data::DatasetConfig cfg_;
  std::vector<std::vector<data::ImageKey>> domain_test_keys_;
  std::vector<std::vector<double>> rows_;
  std::vector<int64_t> trained_domains_;
};

}  // namespace cham::metrics
