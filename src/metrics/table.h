// Minimal fixed-width ASCII table printer for the bench binaries, so every
// reproduced table/figure prints rows directly comparable to the paper's.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace cham::metrics {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::vector<int> widths)
      : headers_(std::move(headers)), widths_(std::move(widths)) {}

  void print_header(std::ostream& os = std::cout) const {
    print_row_impl(headers_, os);
    std::string sep;
    for (int w : widths_) sep += std::string(static_cast<size_t>(w), '-') + "-+-";
    os << sep << "\n";
  }

  void print_row(const std::vector<std::string>& cells,
                 std::ostream& os = std::cout) const {
    print_row_impl(cells, os);
  }

  static std::string fmt(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  static std::string mean_std(double mean, double std, int precision = 2) {
    return fmt(mean, precision) + " +/- " + fmt(std, precision);
  }

 private:
  void print_row_impl(const std::vector<std::string>& cells,
                      std::ostream& os) const {
    for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      os << std::left << std::setw(widths_[i]) << cells[i] << " | ";
    }
    os << "\n";
  }

  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

}  // namespace cham::metrics
