// Accuracy metrics: Acc_all (final accuracy over all classes and domains,
// the paper's headline metric) plus per-class and preferred-class slices.
#pragma once

#include <span>
#include <vector>

#include "core/learner.h"

namespace cham::metrics {

struct AccuracyReport {
  double acc_all = 0;            // paper's Acc_all, in percent
  double acc_preferred = 0;      // accuracy restricted to preferred classes
  std::vector<double> per_class; // percent per class
};

// Evaluates `learner` on `keys` with ground-truth labels taken from the key
// class ids. `preferred` may be empty.
AccuracyReport evaluate(core::ContinualLearner& learner,
                        const std::vector<data::ImageKey>& keys,
                        std::span<const int64_t> preferred = {});

}  // namespace cham::metrics
