// Minimal CSV writer so bench results can feed external plotting without
// parsing the pretty-printed tables. RFC-4180-style quoting.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace cham::metrics {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header) {
    append_row(header);
  }

  void append_row(const std::vector<std::string>& cells) {
    std::ostringstream line;
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i) line << ",";
      line << quote(cells[i]);
    }
    rows_.push_back(line.str());
  }

  void append_row(const std::vector<double>& values, int precision = 4) {
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values) {
      std::ostringstream os;
      os.precision(precision);
      os << std::fixed << v;
      cells.push_back(os.str());
    }
    append_row(cells);
  }

  std::string to_string() const {
    std::string out;
    for (const auto& r : rows_) {
      out += r;
      out += "\n";
    }
    return out;
  }

  bool write(const std::string& path) const {
    std::ofstream f(path);
    if (!f) return false;
    f << to_string();
    return f.good();
  }

  int64_t row_count() const { return static_cast<int64_t>(rows_.size()); }

 private:
  static std::string quote(const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char c : s) {
      if (c == '"') out += '"';
      out += c;
    }
    out += "\"";
    return out;
  }

  std::vector<std::string> rows_;
};

}  // namespace cham::metrics
