#include "metrics/experiment.h"

#include <cstdio>
#include <sstream>

#include "data/augment.h"
#include "nn/loss.h"
#include "nn/model_io.h"
#include "nn/sgd.h"

namespace cham::metrics {

ExperimentConfig core50_experiment() {
  ExperimentConfig cfg;
  cfg.data = data::core50_config();
  cfg.stream = data::StreamConfig{};
  cfg.model.num_classes = cfg.data.num_classes;
  return cfg;
}

ExperimentConfig openloris_experiment() {
  ExperimentConfig cfg;
  cfg.data = data::openloris_config();
  cfg.stream = data::StreamConfig{};
  cfg.model.num_classes = cfg.data.num_classes;
  return cfg;
}

Experiment::Experiment(ExperimentConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.model.num_classes = cfg_.data.num_classes;
  Rng rng(cfg_.data.seed ^ 0x5EED);
  nn::MobileNetV1 model = nn::build_mobilenet_v1(cfg_.model, rng);
  const int64_t latent_layer = cfg_.model.latent_conv_layer;

  // The pretraining cache stores the UNSPLIT network, so every latent-layer
  // split point shares one backbone pretraining.
  const bool cached = nn::load_params(*model.net, cache_path());

  auto split = nn::split_at_conv_layer(std::move(model), latent_layer);
  f_ = std::move(split.f);
  g_template_ = std::move(split.g);
  latent_shape_ = split.latent_shape;
  f_macs_ = f_->macs_per_sample();

  if (!cached) pretrain();

  nn::freeze_batchnorm_stats(*f_);
  nn::freeze_batchnorm_stats(*g_template_);
  latents_ = std::make_unique<data::LatentCache>(cfg_.data, *f_);
  test_keys_ = data::all_test_keys(cfg_.data);
}

std::string Experiment::cache_path() const {
  std::ostringstream os;
  os << cfg_.cache_dir << "/cham_pretrained_" << cfg_.data.name << "_hw"
     << cfg_.model.input_hw << "_a"
     << static_cast<int>(cfg_.model.width_mult * 100) << "_c"
     << cfg_.model.num_classes << "_d" << cfg_.pretrain_domains << "_p"
     << cfg_.pretrain_num_classes << (cfg_.pretrain_augment ? "_aug" : "") << "_e" << cfg_.pretrain_epochs << "_sh"
     << static_cast<int>(cfg_.data.domain_shift * 100) << "_s"
     << cfg_.data.seed << ".bin";
  return os.str();
}

std::unique_ptr<nn::Sequential> Experiment::join_pretrained() const {
  Rng rng(cfg_.data.seed ^ 0x6EAD);
  nn::MobileNetV1 m = nn::build_mobilenet_v1(cfg_.model, rng);
  auto split = nn::split_at_conv_layer(std::move(m),
                                       cfg_.model.latent_conv_layer);
  nn::copy_params(*f_, *split.f);
  nn::copy_params(*g_template_, *split.g);
  auto full = std::move(split.f);
  full->append(std::move(*split.g));
  return full;
}

void Experiment::pretrain() {
  // Generic pretraining distribution: same renderer, disjoint class
  // appearances (seed offset) and a wider class set than the task, a few
  // canonical domains — the ImageNet stand-in.
  data::DatasetConfig pre = cfg_.data;
  pre.seed = cfg_.data.seed + static_cast<uint64_t>(
                                  cfg_.pretrain_classes_seed_offset);
  pre.num_classes = cfg_.pretrain_num_classes;
  pre.num_domains = cfg_.pretrain_domains;
  pre.train_instances = cfg_.pretrain_instances;

  // A separate full network with a pretraining-sized classifier.
  nn::MobileNetConfig pm = cfg_.model;
  pm.num_classes = pre.num_classes;
  Rng build_rng(pre.seed ^ 0x5EED);
  nn::MobileNetV1 pre_model = nn::build_mobilenet_v1(pm, build_rng);
  auto pre_split = nn::split_at_conv_layer(std::move(pre_model),
                                           cfg_.model.latent_conv_layer);
  nn::Sequential& pf = *pre_split.f;
  nn::Sequential& pg = *pre_split.g;

  std::vector<data::ImageKey> keys;
  for (int64_t d = 0; d < pre.num_domains; ++d) {
    auto dk = data::train_keys_for_domain(pre, d);
    keys.insert(keys.end(), dk.begin(), dk.end());
  }

  std::vector<nn::Param*> params = pf.params();
  for (nn::Param* p : pg.params()) params.push_back(p);
  nn::Sgd opt(params, cfg_.pretrain_lr, /*momentum=*/0.9f);

  Rng rng(pre.seed ^ 0x77);
  std::vector<int64_t> order(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) order[i] = static_cast<int64_t>(i);

  for (int64_t epoch = 0; epoch < cfg_.pretrain_epochs; ++epoch) {
    rng.shuffle(order);
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(cfg_.pretrain_batch)) {
      const size_t end = std::min(
          order.size(), start + static_cast<size_t>(cfg_.pretrain_batch));
      std::vector<data::ImageKey> chunk;
      std::vector<int64_t> labels;
      for (size_t i = start; i < end; ++i) {
        const auto& k = keys[static_cast<size_t>(order[i])];
        chunk.push_back(k);
        labels.push_back(k.class_id);
      }
      Tensor x = data::synthesize_batch(pre, chunk);
      if (cfg_.pretrain_augment) {
        x = data::augment_batch(x, data::AugmentConfig{}, rng);
      }
      opt.zero_grad();
      const Tensor z = pf.forward(x, /*train=*/true);
      Tensor logits = pg.forward(z, /*train=*/true);
      auto loss = nn::softmax_cross_entropy(logits, labels);
      const Tensor gz = pg.backward(loss.grad);
      pf.backward(gz);
      opt.step();
    }
  }

  // Transfer everything but the classifier into the task-sized pipeline,
  // then persist the rejoined full network (split-point independent).
  nn::copy_params(pf, *f_);
  nn::copy_params_except_classifier(pg, *g_template_);
  nn::save_params(*join_pretrained(), cache_path());
}

core::LearnerEnv Experiment::env() {
  core::LearnerEnv e;
  e.data_cfg = &cfg_.data;
  e.latents = latents_.get();
  e.latent_shape = latent_shape_;
  e.f_fwd_macs = f_macs_;
  e.lr = cfg_.learner_lr;
  // Learners re-initialise the classifier themselves, seeded by their own
  // learner seed (HeadLearner / FullNetLearner constructors).
  e.head_factory = [this]() {
    // Skip-init build: every parameter (and BN running stat) is overwritten
    // by copy_params below, so the He draws would be dead work — and this
    // factory runs on every serve-path session create AND restore, where
    // the draw loop used to dominate materialisation cost.
    Rng rng(cfg_.data.seed ^ 0x6EAD);
    nn::MobileNetV1 m =
        nn::build_mobilenet_v1(cfg_.model, rng, /*init_weights=*/false);
    auto split = nn::split_at_conv_layer(std::move(m),
                                         cfg_.model.latent_conv_layer);
    nn::copy_params(*g_template_, *split.g);
    nn::freeze_batchnorm_stats(*split.g);
    return std::move(split.g);
  };
  e.full_net_factory = [this]() {
    auto full = join_pretrained();
    // Full-network online training at batch size 10: running BN statistics
    // stay at their pretrained values (the standard small-batch practice).
    nn::freeze_batchnorm_stats(*full);
    return full;
  };
  e.net_fwd_macs = f_macs_ + g_template_->macs_per_sample();
  return e;
}

void Experiment::run(core::ContinualLearner& learner,
                     const data::DomainIncrementalStream& stream) {
  run(learner, stream.batches());
}

void Experiment::run(core::ContinualLearner& learner,
                     const std::vector<data::Batch>& batches) {
  for (const auto& b : batches) learner.observe(b);
}

AccuracyReport Experiment::evaluate(core::ContinualLearner& learner) {
  return metrics::evaluate(learner, test_keys_);
}

void Experiment::warm_latents(const data::DomainIncrementalStream& stream) {
  warm_latents(stream.batches());
}

void Experiment::warm_latents(const std::vector<data::Batch>& batches) {
  std::vector<data::ImageKey> keys = test_keys_;
  for (const auto& b : batches) {
    keys.insert(keys.end(), b.keys.begin(), b.keys.end());
  }
  latents_->warm(keys);
}

}  // namespace cham::metrics
