// Naive lower / upper bounds from the paper's Table I. Both train the FULL
// network (the traditional protocol): Finetuning is the single-epoch
// catastrophic-forgetting lower bound, JOINT the 4-epoch offline upper
// bound (paper Sec. IV-A).
#pragma once

#include "core/full_net_learner.h"

namespace cham::baselines {

class FinetuneLearner : public core::FullNetLearner {
 public:
  FinetuneLearner(const core::LearnerEnv& env, uint64_t seed)
      : FullNetLearner(env, seed) {}

  void observe(const data::Batch& batch) override;
  std::string name() const override { return "Finetuning"; }
  int64_t memory_overhead_bytes() const override { return 0; }
};

class JointLearner : public core::FullNetLearner {
 public:
  JointLearner(const core::LearnerEnv& env, uint64_t seed, int64_t epochs = 4,
               int64_t batch_size = 16)
      : FullNetLearner(env, seed), epochs_(epochs), batch_size_(batch_size) {
    // Offline multi-epoch training is stable at a lower step size than the
    // single-pass online setting; the upper bound gets its own tuned lr.
    opt_.set_lr(env.lr * 0.4f);
  }

  void observe(const data::Batch& batch) override;
  std::vector<int64_t> predict(
      const std::vector<data::ImageKey>& keys) override;
  std::string name() const override { return "JOINT"; }
  // Joint training stores the entire dataset; reported as "—" in the paper.
  int64_t memory_overhead_bytes() const override { return 0; }

 private:
  void fit();

  int64_t epochs_, batch_size_;
  std::vector<data::ImageKey> seen_keys_;
  std::vector<int64_t> seen_labels_;
  bool dirty_ = false;
};

}  // namespace cham::baselines
