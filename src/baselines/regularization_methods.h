// Regularisation baselines (no replay buffer) from the paper's Table I.
// Both train the FULL network, which is why their Table I overheads are
// parameter-sized (~13 MB / 12.5 MB at the paper's model scale).
//
// EwcPlusPlusLearner (online EWC, Chaudhry et al. 2018): maintains an
// exponential moving average of the squared gradients (online Fisher
// diagonal) and anchors the parameters with a quadratic penalty
// lambda/2 * sum_i F_i (theta_i - theta*_i)^2. The anchor theta* is
// refreshed periodically (the online stand-in for task boundaries, which a
// Domain-IL stream does not announce).
//
// LwfLearner (Learning without Forgetting, Li & Hoiem 2018): periodically
// snapshots the network as a frozen teacher and adds a KL-distillation term
// between teacher and student predictions on the incoming batch.
#pragma once

#include "core/full_net_learner.h"
#include "replay/memory_accounting.h"

namespace cham::baselines {

class EwcPlusPlusLearner : public core::FullNetLearner {
 public:
  EwcPlusPlusLearner(const core::LearnerEnv& env, uint64_t seed,
                     float lambda = 50.0f, float fisher_decay = 0.95f,
                     int64_t anchor_period = 30);

  void observe(const data::Batch& batch) override;
  std::string name() const override { return "EWC++"; }
  int64_t memory_overhead_bytes() const override {
    return replay::ewc_overhead_bytes(net_params());
  }

 private:
  void snapshot_anchor();

  float lambda_, fisher_decay_;
  int64_t anchor_period_;
  int64_t step_ = 0;
  std::vector<Tensor> fisher_;   // per-param EMA of grad^2
  std::vector<Tensor> anchor_;   // theta*
};

class LwfLearner : public core::FullNetLearner {
 public:
  LwfLearner(const core::LearnerEnv& env, uint64_t seed,
             float distill_weight = 1.0f, float temperature = 2.0f,
             int64_t teacher_period = 30);

  void observe(const data::Batch& batch) override;
  std::string name() const override { return "LwF"; }
  int64_t memory_overhead_bytes() const override {
    return replay::lwf_overhead_bytes(net_params());
  }

 private:
  void snapshot_teacher();

  float distill_weight_, temperature_;
  int64_t teacher_period_;
  int64_t step_ = 0;
  std::unique_ptr<nn::Sequential> teacher_;
};

}  // namespace cham::baselines
