#include "baselines/slda.h"

namespace cham::baselines {

SldaLearner::SldaLearner(const core::LearnerEnv& env, uint64_t seed,
                         float shrinkage)
    : env_(env), dim_(env.latent_shape[0]), shrinkage_(shrinkage) {
  (void)seed;  // SLDA is deterministic
  means_.reserve(static_cast<size_t>(env.data_cfg->num_classes));
  for (int64_t c = 0; c < env.data_cfg->num_classes; ++c) {
    means_.emplace_back(Shape{{dim_}});
  }
  counts_.assign(static_cast<size_t>(env.data_cfg->num_classes), 0);
  cov_ = Tensor({dim_, dim_});
}

Tensor SldaLearner::feature(const data::ImageKey& key) {
  const Tensor& z = env_.latents->latent(key);
  const int64_t ch = env_.latent_shape[0];
  const int64_t hw = env_.latent_shape[1] * env_.latent_shape[2];
  Tensor f({ch});
  for (int64_t c = 0; c < ch; ++c) {
    double acc = 0;
    const float* p = z.data() + c * hw;
    for (int64_t i = 0; i < hw; ++i) acc += p[i];
    f[c] = static_cast<float>(acc / hw);
  }
  return f;
}

void SldaLearner::observe(const data::Batch& batch) {
  for (size_t i = 0; i < batch.keys.size(); ++i) {
    const Tensor x = feature(batch.keys[i]);
    const int64_t y = batch.labels[i];
    stats_.f_fwd_macs += static_cast<double>(env_.f_fwd_macs);

    Tensor& mu = means_[static_cast<size_t>(y)];
    int64_t& n_c = counts_[static_cast<size_t>(y)];

    // Streaming covariance update (Hayes & Kanan Eq. 2): uses the class
    // mean before and after the update so the estimator stays unbiased.
    if (total_count_ > 0) {
      Tensor delta_pre = x;
      delta_pre -= mu;
      Tensor mu_post = mu;
      for (int64_t j = 0; j < dim_; ++j) {
        mu_post[j] = (mu[j] * static_cast<float>(n_c) + x[j]) /
                     static_cast<float>(n_c + 1);
      }
      Tensor delta_post = x;
      delta_post -= mu_post;
      const float w = static_cast<float>(total_count_) /
                      static_cast<float>(total_count_ + 1);
      for (int64_t r = 0; r < dim_; ++r) {
        const float dr = delta_pre[r];
        float* row = cov_.data() + r * dim_;
        for (int64_t cidx = 0; cidx < dim_; ++cidx) {
          row[cidx] = w * row[cidx] +
                      dr * delta_post[cidx] /
                          static_cast<float>(total_count_ + 1);
        }
      }
      stats_.extra_flops += 3.0 * static_cast<double>(dim_) *
                            static_cast<double>(dim_);
    }

    // Running class mean.
    for (int64_t j = 0; j < dim_; ++j) {
      mu[j] = (mu[j] * static_cast<float>(n_c) + x[j]) /
              static_cast<float>(n_c + 1);
    }
    ++n_c;
    ++total_count_;

    // The paper charges a pseudo-inverse per processed image (Sec. IV-C:
    // "requires a pseudo-matrix inverse operation for each image"). The
    // numerical result only depends on the final covariance, so the host
    // computes it lazily, but the device cost model sees O(d^3) per image.
    stats_.extra_flops += 2.0 * static_cast<double>(dim_) *
                          static_cast<double>(dim_) *
                          static_cast<double>(dim_);
    // Covariance + means live off-chip at this scale.
    stats_.offchip_bytes +=
        static_cast<double>(dim_ * dim_ + dim_) * 4.0;
    ++stats_.images;
  }
  precision_dirty_ = true;
}

void SldaLearner::refresh_precision() {
  if (!precision_dirty_) return;
  // Shrinkage-regularised inverse: Lambda = ((1-eps) Sigma + eps I)^-1.
  Tensor reg = cov_;
  reg *= (1.0f - shrinkage_);
  precision_ = linalg::ridge_inverse(reg, shrinkage_);
  precision_dirty_ = false;
}

std::vector<int64_t> SldaLearner::predict(
    const std::vector<data::ImageKey>& keys) {
  refresh_precision();
  const int64_t num_classes = env_.data_cfg->num_classes;
  // w_c = Lambda mu_c ; b_c = -0.5 mu_c^T Lambda mu_c
  Tensor w({num_classes, dim_});
  std::vector<double> b(static_cast<size_t>(num_classes));
  for (int64_t c = 0; c < num_classes; ++c) {
    const Tensor& mu = means_[static_cast<size_t>(c)];
    for (int64_t r = 0; r < dim_; ++r) {
      double acc = 0;
      const float* row = precision_.data() + r * dim_;
      for (int64_t j = 0; j < dim_; ++j) acc += double(row[j]) * double(mu[j]);
      w.at(c, r) = static_cast<float>(acc);
    }
    double bc = 0;
    for (int64_t r = 0; r < dim_; ++r) bc += double(w.at(c, r)) * double(mu[r]);
    b[static_cast<size_t>(c)] = -0.5 * bc;
  }

  std::vector<int64_t> out;
  out.reserve(keys.size());
  for (const auto& key : keys) {
    const Tensor x = feature(key);
    int64_t best = 0;
    double best_score = -1e300;
    for (int64_t c = 0; c < num_classes; ++c) {
      double score = b[static_cast<size_t>(c)];
      const float* wc = w.data() + c * dim_;
      for (int64_t j = 0; j < dim_; ++j) score += double(wc[j]) * double(x[j]);
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    out.push_back(best);
  }
  return out;
}

}  // namespace cham::baselines
