#include "baselines/simple_methods.h"

namespace cham::baselines {

void FinetuneLearner::observe(const data::Batch& batch) {
  const Tensor x = data::synthesize_batch(*env_.data_cfg, batch.keys);
  train_step(x, batch.labels);
  charge_weight_traffic();
  stats_.images += static_cast<int64_t>(batch.keys.size());
}

void JointLearner::observe(const data::Batch& batch) {
  seen_keys_.insert(seen_keys_.end(), batch.keys.begin(), batch.keys.end());
  seen_labels_.insert(seen_labels_.end(), batch.labels.begin(),
                      batch.labels.end());
  stats_.images += static_cast<int64_t>(batch.keys.size());
  dirty_ = true;
}

void JointLearner::fit() {
  const int64_t n = static_cast<int64_t>(seen_keys_.size());
  if (n == 0) return;
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  for (int64_t epoch = 0; epoch < epochs_; ++epoch) {
    rng_.shuffle(order);
    for (int64_t start = 0; start < n; start += batch_size_) {
      const int64_t end = std::min(start + batch_size_, n);
      std::vector<data::ImageKey> chunk;
      std::vector<int64_t> labels;
      for (int64_t i = start; i < end; ++i) {
        const int64_t j = order[static_cast<size_t>(i)];
        chunk.push_back(seen_keys_[static_cast<size_t>(j)]);
        labels.push_back(seen_labels_[static_cast<size_t>(j)]);
      }
      const Tensor x = data::synthesize_batch(*env_.data_cfg, chunk);
      train_step(x, labels);
    }
  }
  dirty_ = false;
}

std::vector<int64_t> JointLearner::predict(
    const std::vector<data::ImageKey>& keys) {
  if (dirty_) fit();
  return FullNetLearner::predict(keys);
}

}  // namespace cham::baselines
