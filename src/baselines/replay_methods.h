// Single-buffer replay baselines from the paper's Table I.
//
// ER, DER and GSS follow their original papers and train the FULL network on
// raw images — which is exactly why their buffers are image-sized (plus
// logits for DER, plus gradients for GSS) and why they forget more under
// domain shift than latent methods with a frozen backbone.
//
// ErLearner (Experience Replay, Chaudhry et al. 2019): reservoir buffer of
// raw images; each step trains on the incoming batch plus a random replay
// minibatch.
//
// DerLearner (Dark Experience Replay, Buzzega et al. 2020): like ER but the
// buffer also stores the network's logits at insertion time; replayed
// samples are trained with an MSE term against those stored logits.
//
// GssLearner (Gradient-based Sample Selection, Aljundi et al. 2019): greedy
// variant. Buffer entries carry last-layer gradient factors; an incoming
// sample is scored by its maximum cosine similarity to a random buffer
// subset and replaces a similarity-weighted victim when it is more diverse.
// The gradient storage is what gives GSS its ~10x memory overhead.
//
// LatentReplayLearner (Pellegrini et al. 2020): frozen backbone, single
// unified buffer of latent activations with reservoir insertion; replay
// minibatch every step. All buffer traffic is off-chip (the buffer exceeds
// on-chip SRAM) — the cost Chameleon's ST/LT split removes.
#pragma once

#include "core/full_net_learner.h"
#include "core/head_learner.h"
#include "replay/buffer.h"
#include "replay/memory_accounting.h"

namespace cham::baselines {

class ErLearner : public core::FullNetLearner {
 public:
  ErLearner(const core::LearnerEnv& env, int64_t buffer_size, uint64_t seed,
            int64_t replay_minibatch = 10)
      : FullNetLearner(env, seed),
        buffer_(buffer_size),
        replay_minibatch_(replay_minibatch) {}

  void observe(const data::Batch& batch) override;
  std::string name() const override { return "ER"; }
  int64_t memory_overhead_bytes() const override {
    return buffer_.capacity() *
           replay::er_sample_bytes(3, env_.data_cfg->image_hw);
  }
  const replay::ReplayBuffer& buffer() const { return buffer_; }

 private:
  replay::ReplayBuffer buffer_;
  int64_t replay_minibatch_;
};

class DerLearner : public core::FullNetLearner {
 public:
  DerLearner(const core::LearnerEnv& env, int64_t buffer_size, uint64_t seed,
             float alpha = 0.2f, int64_t replay_minibatch = 10)
      : FullNetLearner(env, seed),
        buffer_(buffer_size),
        alpha_(alpha),
        replay_minibatch_(replay_minibatch) {}

  void observe(const data::Batch& batch) override;
  std::string name() const override { return "DER"; }
  int64_t memory_overhead_bytes() const override {
    return buffer_.capacity() *
           replay::der_sample_bytes(3, env_.data_cfg->image_hw,
                                    env_.data_cfg->num_classes);
  }
  const replay::ReplayBuffer& buffer() const { return buffer_; }

 private:
  replay::ReplayBuffer buffer_;
  float alpha_;
  int64_t replay_minibatch_;
};

class GssLearner : public core::FullNetLearner {
 public:
  GssLearner(const core::LearnerEnv& env, int64_t buffer_size, uint64_t seed,
             int64_t replay_minibatch = 10, int64_t similarity_subset = 10)
      : FullNetLearner(env, seed),
        capacity_(buffer_size),
        replay_minibatch_(replay_minibatch),
        similarity_subset_(similarity_subset) {}

  void observe(const data::Batch& batch) override;
  std::string name() const override { return "GSS"; }
  int64_t memory_overhead_bytes() const override {
    // GSS stores a gradient vector per sample (paper: "up to 10x more
    // memory overhead for the same number of replay samples"). We account
    // the final-layer gradient (classes x pooled features + bias).
    const int64_t feat_dim = final_feature_dim();
    const int64_t grad_dim =
        env_.data_cfg->num_classes * feat_dim + env_.data_cfg->num_classes;
    return capacity_ *
           replay::gss_sample_bytes(3, env_.data_cfg->image_hw, grad_dim);
  }
  int64_t buffer_size() const { return static_cast<int64_t>(items_.size()); }

 private:
  struct GssItem {
    replay::ReplaySample sample;
    // The last-layer weight gradient factorises as (p - y) ⊗ h; storing the
    // two factors gives exact cosine similarities at a fraction of the
    // compute (cos(a⊗b, c⊗d) = cos(a,c) * cos(b,d)).
    std::vector<float> grad_class;    // p - onehot(y)
    std::vector<float> grad_feature;  // final pooled feature h
    double score = 0.1;               // running max-similarity score
  };

  int64_t final_feature_dim() const;
  GssItem make_item(const data::ImageKey& key, int64_t label);
  static double cosine(std::span<const float> a, std::span<const float> b);
  double max_similarity(const GssItem& item,
                        const std::vector<int64_t>& subset) const;

  int64_t capacity_;
  int64_t replay_minibatch_;
  int64_t similarity_subset_;
  std::vector<GssItem> items_;
};

class LatentReplayLearner : public core::HeadLearner {
 public:
  LatentReplayLearner(const core::LearnerEnv& env, int64_t buffer_size,
                      uint64_t seed, int64_t replay_minibatch = 10)
      : HeadLearner(env, seed),
        buffer_(buffer_size),
        replay_minibatch_(replay_minibatch) {}

  void observe(const data::Batch& batch) override;
  std::string name() const override { return "Latent Replay"; }
  int64_t memory_overhead_bytes() const override {
    return buffer_.capacity() *
           replay::latent_sample_bytes(env_.latent_shape.numel());
  }
  const replay::ReplayBuffer& buffer() const { return buffer_; }

 private:
  replay::ReplayBuffer buffer_;
  int64_t replay_minibatch_;
};

}  // namespace cham::baselines
