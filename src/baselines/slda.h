// Deep Streaming Linear Discriminant Analysis (Hayes & Kanan, CVPRW 2020).
//
// A non-parametric online classifier over pooled backbone features: running
// per-class means, a shared streaming covariance with shrinkage, and a
// precision matrix obtained by (pseudo-)inverting the covariance. The paper
// highlights that this inverse is O(d^3) and is what makes SLDA slow on edge
// devices despite its small memory footprint — that cost is charged to
// `extra_flops` for the Table II device models.
#pragma once

#include "core/learner.h"
#include "linalg/linalg.h"
#include "replay/memory_accounting.h"
#include "tensor/ops.h"

namespace cham::baselines {

class SldaLearner : public core::ContinualLearner {
 public:
  SldaLearner(const core::LearnerEnv& env, uint64_t seed,
              float shrinkage = 1e-2f);

  void observe(const data::Batch& batch) override;
  std::vector<int64_t> predict(
      const std::vector<data::ImageKey>& keys) override;
  std::string name() const override { return "SLDA"; }
  int64_t memory_overhead_bytes() const override {
    return replay::slda_overhead_bytes(dim_, env_.data_cfg->num_classes);
  }

  const Tensor& class_mean(int64_t c) const {
    return means_[static_cast<size_t>(c)];
  }
  int64_t class_count(int64_t c) const {
    return counts_[static_cast<size_t>(c)];
  }

 private:
  // Pooled feature (GAP over the latent's spatial dims) of one image.
  Tensor feature(const data::ImageKey& key);
  void refresh_precision();

  core::LearnerEnv env_;
  int64_t dim_;
  float shrinkage_;
  std::vector<Tensor> means_;     // per class, dim_
  std::vector<int64_t> counts_;   // per class
  Tensor cov_;                    // dim_ x dim_, shared
  int64_t total_count_ = 0;
  Tensor precision_;              // cached inverse
  bool precision_dirty_ = true;
};

}  // namespace cham::baselines
