#include "baselines/replay_methods.h"

#include <cmath>

#include "nn/layers.h"

namespace cham::baselines {
namespace {

int64_t raw_bytes(const core::LearnerEnv& env) {
  return replay::er_sample_bytes(3, env.data_cfg->image_hw);
}

}  // namespace

// --------------------------------------------------------------------- ER

void ErLearner::observe(const data::Batch& batch) {
  const int64_t bsz = static_cast<int64_t>(batch.keys.size());

  std::vector<data::ImageKey> train_keys = batch.keys;
  std::vector<int64_t> labels = batch.labels;

  // Replay minibatch: raw images from DRAM through the full network.
  const auto replay_idx = buffer_.sample_indices(replay_minibatch_, rng_);
  for (int64_t i : replay_idx) {
    const auto& s = buffer_.item(i);
    train_keys.push_back(s.key);
    labels.push_back(s.label);
  }
  stats_.offchip_bytes += static_cast<double>(
      static_cast<int64_t>(replay_idx.size()) * raw_bytes(env_));

  const Tensor x = data::synthesize_batch(*env_.data_cfg, train_keys);
  train_step(x, labels);
  charge_weight_traffic();

  // Reservoir insertion of every incoming sample (raw image write).
  for (int64_t i = 0; i < bsz; ++i) {
    replay::ReplaySample s;
    s.key = batch.keys[static_cast<size_t>(i)];
    s.label = batch.labels[static_cast<size_t>(i)];
    if (buffer_.reservoir_add(std::move(s), rng_) >= 0) {
      stats_.offchip_bytes += static_cast<double>(raw_bytes(env_));
    }
  }
  stats_.images += bsz;
}

// -------------------------------------------------------------------- DER

void DerLearner::observe(const data::Batch& batch) {
  const int64_t bsz = static_cast<int64_t>(batch.keys.size());
  const int64_t classes = env_.data_cfg->num_classes;

  // CE on the incoming batch. The two loss terms are normalised over the
  // COMBINED sample count so the effective step size matches a single
  // concatenated pass (otherwise DER takes 2x-sized steps vs ER and
  // destabilises at the online learning rate).
  const auto replay_idx = buffer_.sample_indices(replay_minibatch_, rng_);
  const float ce_share =
      static_cast<float>(bsz) /
      static_cast<float>(bsz + static_cast<int64_t>(replay_idx.size()));

  opt_.zero_grad();
  const Tensor x = data::synthesize_batch(*env_.data_cfg, batch.keys);
  Tensor logits = net_->forward(x, /*train=*/true);
  auto ce = nn::softmax_cross_entropy(logits, batch.labels);
  ce.grad *= ce_share;
  net_->backward(ce.grad);
  charge_net(bsz);

  // Dark-knowledge MSE on replayed logits.
  if (!replay_idx.empty()) {
    std::vector<data::ImageKey> rkeys;
    Tensor targets({static_cast<int64_t>(replay_idx.size()), classes});
    for (size_t i = 0; i < replay_idx.size(); ++i) {
      const auto& s = buffer_.item(replay_idx[i]);
      rkeys.push_back(s.key);
      std::copy(s.logits.data(), s.logits.data() + classes,
                targets.data() + static_cast<int64_t>(i) * classes);
    }
    stats_.offchip_bytes += static_cast<double>(
        static_cast<int64_t>(replay_idx.size()) *
        (raw_bytes(env_) + replay::logits_bytes(classes)));

    const Tensor xr = data::synthesize_batch(*env_.data_cfg, rkeys);
    Tensor rlogits = net_->forward(xr, /*train=*/true);
    auto dark = nn::mse(rlogits, targets);
    dark.grad *= alpha_ * (1.0f - ce_share);
    net_->backward(dark.grad);
    charge_net(static_cast<int64_t>(replay_idx.size()));
  }
  opt_.step();
  charge_weight_traffic();

  // Insert incoming samples with their current logits.
  for (int64_t i = 0; i < bsz; ++i) {
    replay::ReplaySample s;
    s.key = batch.keys[static_cast<size_t>(i)];
    s.label = batch.labels[static_cast<size_t>(i)];
    s.logits = Tensor({classes});
    std::copy(logits.data() + i * classes, logits.data() + (i + 1) * classes,
              s.logits.data());
    if (buffer_.reservoir_add(std::move(s), rng_) >= 0) {
      stats_.offchip_bytes += static_cast<double>(
          raw_bytes(env_) + replay::logits_bytes(classes));
    }
  }
  stats_.images += bsz;
}

// -------------------------------------------------------------------- GSS

int64_t GssLearner::final_feature_dim() const {
  // The input width of the final classifier.
  auto& net = const_cast<nn::Sequential&>(*net_);
  for (int64_t i = net.size() - 1; i >= 0; --i) {
    if (auto* fc = dynamic_cast<nn::Linear*>(&net.layer(i))) {
      return fc->in_dim();
    }
  }
  return env_.latent_shape[0];
}

double GssLearner::cosine(std::span<const float> a, std::span<const float> b) {
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += double(a[i]) * double(b[i]);
    na += double(a[i]) * double(a[i]);
    nb += double(b[i]) * double(b[i]);
  }
  if (na <= 0 || nb <= 0) return 0;
  return dot / std::sqrt(na * nb);
}

GssLearner::GssItem GssLearner::make_item(const data::ImageKey& key,
                                          int64_t label) {
  GssItem item;
  item.sample.key = key;
  item.sample.label = label;
  const Tensor x = data::synthesize_batch(*env_.data_cfg, {key});
  const Tensor logits = eval_logits(x);
  const auto probs = cham::ops::softmax_row(logits.row(0));
  item.grad_class.assign(probs.begin(), probs.end());
  item.grad_class[static_cast<size_t>(label)] -= 1.0f;
  // Final pooled feature: forward through all but the classifier. Re-run
  // the pipeline up to the penultimate layer.
  Tensor h = x;
  for (int64_t i = 0; i < net_->size() - 1; ++i) {
    h = net_->layer(i).forward(h, /*train=*/false);
  }
  item.grad_feature.assign(h.data(), h.data() + h.numel());
  stats_.f_fwd_macs += static_cast<double>(net_fwd_macs_);
  return item;
}

double GssLearner::max_similarity(const GssItem& item,
                                  const std::vector<int64_t>& subset) const {
  double best = -1;
  for (int64_t i : subset) {
    const GssItem& o = items_[static_cast<size_t>(i)];
    const double sim = cosine(item.grad_class, o.grad_class) *
                       cosine(item.grad_feature, o.grad_feature);
    best = std::max(best, sim);
  }
  return best;
}

void GssLearner::observe(const data::Batch& batch) {
  const int64_t bsz = static_cast<int64_t>(batch.keys.size());

  std::vector<data::ImageKey> train_keys = batch.keys;
  std::vector<int64_t> labels = batch.labels;
  std::vector<int64_t> replay_idx = rng_.sample_without_replacement(
      static_cast<int64_t>(items_.size()),
      std::min<int64_t>(replay_minibatch_,
                        static_cast<int64_t>(items_.size())));
  const int64_t grad_dim =
      env_.data_cfg->num_classes * final_feature_dim() +
      env_.data_cfg->num_classes;
  for (int64_t i : replay_idx) {
    const auto& s = items_[static_cast<size_t>(i)].sample;
    train_keys.push_back(s.key);
    labels.push_back(s.label);
  }
  stats_.offchip_bytes += static_cast<double>(
      static_cast<int64_t>(replay_idx.size()) * raw_bytes(env_));

  const Tensor x = data::synthesize_batch(*env_.data_cfg, train_keys);
  train_step(x, labels);
  charge_weight_traffic();

  // Gradient-based greedy selection per incoming sample.
  for (int64_t i = 0; i < bsz; ++i) {
    GssItem item = make_item(batch.keys[static_cast<size_t>(i)],
                             batch.labels[static_cast<size_t>(i)]);
    if (static_cast<int64_t>(items_.size()) < capacity_) {
      if (!items_.empty()) {
        const auto subset = rng_.sample_without_replacement(
            static_cast<int64_t>(items_.size()),
            std::min<int64_t>(similarity_subset_,
                              static_cast<int64_t>(items_.size())));
        item.score = std::max(0.0, max_similarity(item, subset)) + 0.01;
      }
      items_.push_back(std::move(item));
      stats_.offchip_bytes += static_cast<double>(
          raw_bytes(env_) + grad_dim * replay::kBytesPerFloat);
      continue;
    }
    const auto subset = rng_.sample_without_replacement(
        static_cast<int64_t>(items_.size()),
        std::min<int64_t>(similarity_subset_,
                          static_cast<int64_t>(items_.size())));
    const double new_score =
        std::max(0.0, max_similarity(item, subset)) + 0.01;
    // Victim sampled proportionally to its similarity score: redundant
    // entries are evicted first. Replace only if the newcomer is more
    // gradient-diverse than the victim.
    std::vector<double> weights;
    weights.reserve(items_.size());
    for (const auto& it : items_) weights.push_back(it.score);
    const int64_t victim = rng_.sample_weighted(weights);
    if (victim >= 0 && new_score < items_[static_cast<size_t>(victim)].score) {
      item.score = new_score;
      items_[static_cast<size_t>(victim)] = std::move(item);
      stats_.offchip_bytes += static_cast<double>(
          raw_bytes(env_) + grad_dim * replay::kBytesPerFloat);
    }
  }
  stats_.images += bsz;
}

// ---------------------------------------------------------- Latent Replay

void LatentReplayLearner::observe(const data::Batch& batch) {
  const int64_t bsz = static_cast<int64_t>(batch.keys.size());
  const int64_t latent_sz =
      replay::latent_sample_bytes(env_.latent_shape.numel());

  std::vector<const Tensor*> latents;
  std::vector<int64_t> labels = batch.labels;
  for (const auto& key : batch.keys) {
    latents.push_back(&env_.latents->latent(key));
  }
  charge_f(bsz);

  // Replay latents live in the unified off-chip buffer.
  const auto replay_idx = buffer_.sample_indices(replay_minibatch_, rng_);
  std::vector<replay::ReplaySample> hold;
  for (int64_t i : replay_idx) hold.push_back(buffer_.item(i));
  for (const auto& s : hold) {
    latents.push_back(&s.latent);
    labels.push_back(s.label);
  }
  stats_.offchip_bytes += static_cast<double>(
      static_cast<int64_t>(replay_idx.size()) * latent_sz);

  const Tensor z = data::stack_latents(latents);
  train_step(z, labels);
  charge_weight_traffic();

  // Reservoir insertion of incoming latents (off-chip writes).
  for (int64_t i = 0; i < bsz; ++i) {
    replay::ReplaySample s;
    s.key = batch.keys[static_cast<size_t>(i)];
    s.label = batch.labels[static_cast<size_t>(i)];
    s.latent = env_.latents->latent(s.key);
    if (buffer_.reservoir_add(std::move(s), rng_) >= 0) {
      stats_.offchip_bytes += static_cast<double>(latent_sz);
    }
  }
  stats_.images += bsz;
}

}  // namespace cham::baselines
