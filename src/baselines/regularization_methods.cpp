#include "baselines/regularization_methods.h"

#include "nn/mobilenet.h"

namespace cham::baselines {

// ------------------------------------------------------------------ EWC++

EwcPlusPlusLearner::EwcPlusPlusLearner(const core::LearnerEnv& env,
                                       uint64_t seed, float lambda,
                                       float fisher_decay,
                                       int64_t anchor_period)
    : FullNetLearner(env, seed),
      lambda_(lambda),
      fisher_decay_(fisher_decay),
      anchor_period_(anchor_period) {
  for (nn::Param* p : net_->params()) {
    fisher_.emplace_back(p->value.shape());
    anchor_.push_back(p->value);
  }
}

void EwcPlusPlusLearner::snapshot_anchor() {
  auto params = net_->params();
  for (size_t i = 0; i < params.size(); ++i) anchor_[i] = params[i]->value;
}

void EwcPlusPlusLearner::observe(const data::Batch& batch) {
  ++step_;
  const Tensor x = data::synthesize_batch(*env_.data_cfg, batch.keys);

  opt_.zero_grad();
  Tensor logits = net_->forward(x, /*train=*/true);
  auto ce = nn::softmax_cross_entropy(logits, batch.labels);
  net_->backward(ce.grad);
  charge_net(static_cast<int64_t>(batch.keys.size()));

  // Online Fisher update from the task gradients, then the quadratic
  // anchor penalty added on top.
  auto params = net_->params();
  for (size_t i = 0; i < params.size(); ++i) {
    nn::Param* p = params[i];
    Tensor& f = fisher_[i];
    const Tensor& a = anchor_[i];
    for (int64_t j = 0; j < p->numel(); ++j) {
      const float g = p->grad[j];
      f[j] = fisher_decay_ * f[j] + (1.0f - fisher_decay_) * g * g;
      p->grad[j] += lambda_ * f[j] * (p->value[j] - a[j]);
    }
  }
  opt_.step();
  charge_weight_traffic();
  // Fisher + anchor live in DRAM and are touched every step.
  stats_.offchip_bytes += static_cast<double>(net_params()) * 8.0;

  if (step_ % anchor_period_ == 0) snapshot_anchor();
  stats_.images += static_cast<int64_t>(batch.keys.size());
}

// -------------------------------------------------------------------- LwF

LwfLearner::LwfLearner(const core::LearnerEnv& env, uint64_t seed,
                       float distill_weight, float temperature,
                       int64_t teacher_period)
    : FullNetLearner(env, seed),
      distill_weight_(distill_weight),
      temperature_(temperature),
      teacher_period_(teacher_period) {}

void LwfLearner::snapshot_teacher() {
  teacher_ = env_.full_net_factory();
  nn::copy_params(*net_, *teacher_);
}

void LwfLearner::observe(const data::Batch& batch) {
  ++step_;
  const Tensor x = data::synthesize_batch(*env_.data_cfg, batch.keys);

  opt_.zero_grad();
  Tensor logits = net_->forward(x, /*train=*/true);
  auto ce = nn::softmax_cross_entropy(logits, batch.labels);
  Tensor total_grad = ce.grad;
  if (teacher_) {
    const Tensor teacher_logits = teacher_->forward(x, /*train=*/false);
    auto kd = nn::kl_distillation(logits, teacher_logits, temperature_);
    kd.grad *= distill_weight_;
    total_grad += kd.grad;
    // Teacher forward counts as extra compute.
    stats_.f_fwd_macs += static_cast<double>(
        net_fwd_macs_ * static_cast<int64_t>(batch.keys.size()));
  }
  net_->backward(total_grad);
  charge_net(static_cast<int64_t>(batch.keys.size()));
  opt_.step();
  charge_weight_traffic();
  // Teacher parameters stream from DRAM when distilling.
  if (teacher_) {
    stats_.offchip_bytes += static_cast<double>(net_params()) * 4.0;
  }

  if (step_ % teacher_period_ == 0) snapshot_teacher();
  stats_.images += static_cast<int64_t>(batch.keys.size());
}

}  // namespace cham::baselines
