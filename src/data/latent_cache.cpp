#include "data/latent_cache.h"

#include <algorithm>
#include <atomic>

#include "util/check.h"

namespace cham::data {

void LatentCache::touch(Entry& e) {
  if (e.lru_it != lru_.begin()) {
    lru_.splice(lru_.begin(), lru_, e.lru_it);
  }
}

const Tensor& LatentCache::insert(uint64_t packed, Tensor z) {
  if (max_entries_ > 0 &&
      static_cast<int64_t>(cache_.size()) >= max_entries_) {
    // Evict before inserting so the new entry never becomes the victim.
    const uint64_t victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);
    ++evictions_;
  }
  lru_.push_front(packed);
  auto [it, ok] = cache_.emplace(packed, Entry{std::move(z), lru_.begin()});
  CHAM_DCHECK(ok, "LatentCache: duplicate insert");
  return it->second.latent;
}

void LatentCache::check_owner() {
  if (max_entries_ <= 0) return;
  if (owner_ == std::thread::id{}) {
    owner_ = std::this_thread::get_id();
    return;
  }
  CHAM_CHECK(owner_ == std::this_thread::get_id(),
             "LatentCache: bounded cache accessed from a second thread; "
             "eviction invalidates references held by other threads, so "
             "bounded caches are single-owner (use an unbounded cache for "
             "multi-session serving)");
}

const Tensor& LatentCache::latent(const ImageKey& key) {
  util::MutexLock lock(mu_);
  check_owner();
  const uint64_t k = key.packed();
  auto it = cache_.find(k);
  if (it != cache_.end()) {
    touch(it->second);
    return it->second.latent;
  }
  // Miss path runs the backbone under the lock: concurrent misses would be
  // numerically identical anyway (frozen f), but double-inserting the same
  // key would break the LRU bookkeeping.
  const Tensor img = synthesize_batch(cfg_, {key});
  Tensor z = f_.forward(img, /*train=*/false);
  return insert(k, std::move(z));
}

void LatentCache::warm(const std::vector<ImageKey>& keys, int64_t batch) {
  util::MutexLock lock(mu_);
  check_owner();
  std::vector<ImageKey> missing;
  for (const ImageKey& key : keys) {
    if (!cache_.contains(key.packed())) missing.push_back(key);
  }
  for (size_t start = 0; start < missing.size();
       start += static_cast<size_t>(batch)) {
    const size_t end =
        std::min(missing.size(), start + static_cast<size_t>(batch));
    std::vector<ImageKey> chunk(missing.begin() + static_cast<int64_t>(start),
                                missing.begin() + static_cast<int64_t>(end));
    const Tensor imgs = synthesize_batch(cfg_, chunk);
    const Tensor z = f_.forward(imgs, /*train=*/false);
    const int64_t per = z.numel() / z.dim(0);
    const Shape row_shape{{1, z.dim(1), z.dim(2), z.dim(3)}};
    for (size_t i = 0; i < chunk.size(); ++i) {
      // Single copy straight out of the batched forward (the old path
      // zero-filled a tensor and then overwrote it — two passes over
      // every latent during warm-up).
      insert(chunk[i].packed(),
             Tensor(row_shape,
                    std::span<const float>(
                        z.data() + static_cast<int64_t>(i) * per,
                        static_cast<size_t>(per))));
    }
  }
}

namespace {
std::atomic<int64_t> g_stack_latents_calls{0};
}  // namespace

int64_t stack_latents_calls() {
  return g_stack_latents_calls.load(std::memory_order_relaxed);
}

Tensor stack_latents(const std::vector<const Tensor*>& latents) {
  g_stack_latents_calls.fetch_add(1, std::memory_order_relaxed);
  CHAM_CHECK(!latents.empty(), "stack of zero latents");
  const Tensor& first = *latents.front();
  CHAM_CHECK(first.rank() == 4 && first.dim(0) == 1,
             "latent " + first.shape().to_string() + " is not 1xCxHxW");
  Tensor out({static_cast<int64_t>(latents.size()), first.dim(1),
              first.dim(2), first.dim(3)});
  const int64_t per = first.numel();
  for (size_t i = 0; i < latents.size(); ++i) {
    CHAM_CHECK_SHAPE(latents[i]->shape(), first.shape());
    std::copy(latents[i]->data(), latents[i]->data() + per,
              out.data() + static_cast<int64_t>(i) * per);
  }
  return out;
}

}  // namespace cham::data
