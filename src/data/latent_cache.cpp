#include "data/latent_cache.h"

#include <algorithm>

#include "util/check.h"

namespace cham::data {

const Tensor& LatentCache::latent(const ImageKey& key) {
  const uint64_t k = key.packed();
  auto it = cache_.find(k);
  if (it != cache_.end()) return it->second;
  const Tensor img = synthesize_batch(cfg_, {key});
  Tensor z = f_.forward(img, /*train=*/false);
  auto [ins, ok] = cache_.emplace(k, std::move(z));
  (void)ok;
  return ins->second;
}

void LatentCache::warm(const std::vector<ImageKey>& keys, int64_t batch) {
  std::vector<ImageKey> missing;
  for (const ImageKey& key : keys) {
    if (!cache_.contains(key.packed())) missing.push_back(key);
  }
  for (size_t start = 0; start < missing.size();
       start += static_cast<size_t>(batch)) {
    const size_t end =
        std::min(missing.size(), start + static_cast<size_t>(batch));
    std::vector<ImageKey> chunk(missing.begin() + static_cast<int64_t>(start),
                                missing.begin() + static_cast<int64_t>(end));
    const Tensor imgs = synthesize_batch(cfg_, chunk);
    const Tensor z = f_.forward(imgs, /*train=*/false);
    const int64_t per = z.numel() / z.dim(0);
    for (size_t i = 0; i < chunk.size(); ++i) {
      Tensor zi(Shape{{1, z.dim(1), z.dim(2), z.dim(3)}});
      std::copy(z.data() + static_cast<int64_t>(i) * per,
                z.data() + static_cast<int64_t>(i + 1) * per, zi.data());
      cache_.emplace(chunk[i].packed(), std::move(zi));
    }
  }
}

Tensor stack_latents(const std::vector<const Tensor*>& latents) {
  CHAM_CHECK(!latents.empty(), "stack of zero latents");
  const Tensor& first = *latents.front();
  CHAM_CHECK(first.rank() == 4 && first.dim(0) == 1,
             "latent " + first.shape().to_string() + " is not 1xCxHxW");
  Tensor out({static_cast<int64_t>(latents.size()), first.dim(1),
              first.dim(2), first.dim(3)});
  const int64_t per = first.numel();
  for (size_t i = 0; i < latents.size(); ++i) {
    CHAM_CHECK_SHAPE(latents[i]->shape(), first.shape());
    std::copy(latents[i]->data(), latents[i]->data() + per,
              out.data() + static_cast<int64_t>(i) * per);
  }
  return out;
}

}  // namespace cham::data
