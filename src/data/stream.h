// Online continual-learning streams.
//
// DomainIncrementalStream — the paper's evaluation setting (Domain-IL):
// all classes, domains arriving in sequence.
//
// ClassIncrementalStream — the complementary Class-IL setting offered as an
// extension: classes arrive in groups ("tasks") while every domain is mixed
// within a task. Useful for studying Chameleon's class-balanced long-term
// store when the class distribution itself is non-stationary.
//
// Domains arrive strictly in sequence (CORe50 "sessions"). Within a domain,
// samples arrive in short temporally-correlated runs of one class (video
// frames of one object), with the class of each run drawn from a
// user-preference distribution: the k preferred classes are over-sampled by
// `preference_weight`. The preferred set can drift mid-stream, exercising the
// paper's learning-window recalibration.
#pragma once

#include <istream>
#include <ostream>
#include <vector>

#include "data/dataset.h"

namespace cham::data {

struct StreamConfig {
  int64_t batch_size = 10;     // paper setting
  int64_t run_length = 5;      // consecutive frames per object "video"
  // User preference model.
  int64_t num_preferred = 5;   // paper: k = 5
  float preference_weight = 12.0f;  // preferred classes dominate the stream
  bool drift_preferences = true;   // switch preferred set halfway per run
  uint64_t seed = 42;
};

struct Batch {
  std::vector<ImageKey> keys;
  std::vector<int64_t> labels;
  int64_t domain = 0;
};

// One request a serving session executed: an observe (carrying its batch) or
// a predict (carrying its query keys). The write-behind checkpoint pipeline
// (src/serve/) logs these between full-blob flushes; replaying the log on
// top of the base blob reconstructs the evicted state bit-identically, which
// is usually far smaller than shipping the state itself. Predicts are logged
// too because they charge the traffic ledger, which is part of the state.
struct ServeOp {
  bool predict = false;
  Batch batch;                 // observe payload (unused for predicts)
  std::vector<ImageKey> keys;  // predict payload (unused for observes)
};

// Byte-stable (de)serialisation of batches and serve-op logs, used by the
// CHS3 op-log delta frames (core/checkpoint.h). Return false on malformed
// input or stream failure.
bool save_batch(const Batch& batch, std::ostream& os);
bool load_batch(Batch& batch, std::istream& is);
bool save_ops(const std::vector<ServeOp>& ops, std::ostream& os);
bool load_ops(std::vector<ServeOp>& ops, std::istream& is);

// Materialised stream: the full ordered list of batches for one experiment
// run. Total length matches one pass over the training pool (paper: each
// sample passes through the model only once); preferred classes appear more
// often, others less, preserving the total sample count.
class DomainIncrementalStream {
 public:
  DomainIncrementalStream(const DatasetConfig& data_cfg,
                          const StreamConfig& stream_cfg);

  int64_t num_batches() const { return static_cast<int64_t>(batches_.size()); }
  const Batch& batch(int64_t i) const {
    return batches_[static_cast<size_t>(i)];
  }
  const std::vector<Batch>& batches() const { return batches_; }

  // Ground-truth preferred classes per domain (for evaluation of the
  // preference tracker; the learners never see this).
  const std::vector<std::vector<int64_t>>& preferred_by_domain() const {
    return preferred_by_domain_;
  }

  int64_t total_samples() const { return total_samples_; }

 private:
  std::vector<Batch> batches_;
  std::vector<std::vector<int64_t>> preferred_by_domain_;
  int64_t total_samples_ = 0;
};

// --- Multi-user serving workloads -----------------------------------------
//
// The serving runtime (src/serve/) multiplexes many per-user learners; its
// benchmarks and tests need a realistic arrival schedule. Web-scale traffic
// is heavily skewed — a few hot users dominate while a long tail of cold
// sessions trickles in — which is exactly the regime that exercises
// checkpoint-backed eviction (cold sessions fall out of the resident pool
// and must restore bit-identically later).

struct MultiUserConfig {
  int64_t num_sessions = 50;
  int64_t events = 2000;  // total submissions across all sessions
  double zipf_s = 1.1;    // Zipf exponent over session rank; 0 = uniform
  // Fraction of events that are predicts instead of observes (drawn i.i.d.
  // per event). Predict-heavy traffic is the regime where chunk-diff delta
  // checkpoints win: predicts mutate only the traffic ledger.
  double predict_fraction = 0.0;
  uint64_t seed = 7;
};

// One serving arrival: session `session` submits its next batch, the
// `batch_index`-th of its private stream (a per-session running counter, so
// replaying the schedule through isolated learners is trivial). Predict
// events do not consume a batch index; batch_index then counts the observes
// submitted so far (the stream position the predict sees).
struct SessionEvent {
  int64_t session = 0;
  int64_t batch_index = 0;
  bool predict = false;
};

// Draws `events` sessions i.i.d. from Zipf(zipf_s) over session ranks
// 0..num_sessions-1 (rank 0 hottest) and assigns per-session batch indices
// in arrival order. Deterministic in the seed.
std::vector<SessionEvent> make_zipf_schedule(const MultiUserConfig& cfg);

struct ClassIncrementalConfig {
  int64_t classes_per_task = 10;
  int64_t batch_size = 10;
  int64_t run_length = 5;
  uint64_t seed = 43;
};

// Classes arrive in disjoint groups; within a task, samples mix all domains
// of the task's classes in temporally-correlated runs.
class ClassIncrementalStream {
 public:
  ClassIncrementalStream(const DatasetConfig& data_cfg,
                         const ClassIncrementalConfig& cfg);

  int64_t num_batches() const { return static_cast<int64_t>(batches_.size()); }
  const Batch& batch(int64_t i) const {
    return batches_[static_cast<size_t>(i)];
  }
  const std::vector<Batch>& batches() const { return batches_; }
  int64_t num_tasks() const { return num_tasks_; }
  // Classes introduced by task t.
  const std::vector<int64_t>& task_classes(int64_t t) const {
    return task_classes_[static_cast<size_t>(t)];
  }

 private:
  std::vector<Batch> batches_;
  std::vector<std::vector<int64_t>> task_classes_;
  int64_t num_tasks_ = 0;
};

}  // namespace cham::data
