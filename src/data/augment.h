// Train-time image augmentations for the pretraining path.
//
// The backbone's domain robustness (DESIGN.md §6) comes from seeing varied
// appearances during pretraining; these augmentations widen that variation
// beyond the generator's own domain set: horizontal flip, random shift with
// edge padding, brightness/contrast jitter, and additive noise. All take an
// explicit Rng (reproducible) and operate on CHW or NCHW float images in
// [0, 1].
#pragma once

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace cham::data {

struct AugmentConfig {
  bool hflip = true;
  int64_t max_shift_px = 2;
  float brightness = 0.15f;  // multiplicative jitter range +-
  float contrast = 0.15f;
  float noise_sigma = 0.01f;
};

// Horizontal flip of a CHW image (in place variant returns a copy here for
// value-semantic composition).
Tensor hflip(const Tensor& chw);

// Integer translation with clamp-to-edge padding.
Tensor shift(const Tensor& chw, int64_t dx, int64_t dy);

// value' = clamp(0.5 + contrast * (value - 0.5)) * brightness.
Tensor color_jitter(const Tensor& chw, float brightness, float contrast);

// Applies the configured random augmentations to one CHW image.
Tensor augment(const Tensor& chw, const AugmentConfig& cfg, Rng& rng);

// Applies `augment` independently to every image of an NCHW batch.
Tensor augment_batch(const Tensor& nchw, const AugmentConfig& cfg, Rng& rng);

}  // namespace cham::data
