// Latent-activation cache over the frozen backbone f.
//
// f never changes during continual learning, so the latent of a pool image is
// computed once per process and shared by every method / run in a benchmark.
// On real hardware, methods that store raw images (ER/DER/GSS) must re-run f
// on every replay — that cost is charged by the hardware cost model
// (src/hw), not here; this cache is purely a host-side speed optimisation
// that is numerically identical to recomputation.
#pragma once

#include <unordered_map>

#include "data/dataset.h"
#include "nn/sequential.h"

namespace cham::data {

class LatentCache {
 public:
  // `f` must outlive the cache. `cfg` is the dataset the keys refer to.
  LatentCache(const DatasetConfig& cfg, nn::Sequential& f)
      : cfg_(cfg), f_(f) {}

  // Latent activation (1 x C x H x W) of one image; computed on miss.
  const Tensor& latent(const ImageKey& key);

  // Precompute a set of keys in batches (faster GEMMs than one-by-one).
  void warm(const std::vector<ImageKey>& keys, int64_t batch = 32);

  int64_t size() const { return static_cast<int64_t>(cache_.size()); }

 private:
  DatasetConfig cfg_;
  nn::Sequential& f_;
  std::unordered_map<uint64_t, Tensor> cache_;
};

// Stacks per-sample latents (each 1 x C x H x W) into an N x C x H x W batch.
Tensor stack_latents(const std::vector<const Tensor*>& latents);

}  // namespace cham::data
