// Latent-activation cache over the frozen backbone f.
//
// f never changes during continual learning, so the latent of a pool image is
// computed once per process and shared by every method / run in a benchmark.
// On real hardware, methods that store raw images (ER/DER/GSS) must re-run f
// on every replay — that cost is charged by the hardware cost model
// (src/hw), not here; this cache is purely a host-side speed optimisation
// that is numerically identical to recomputation.
//
// The cache can be bounded: with max_entries > 0 it evicts the
// least-recently-used latent once the bound is reached (and recomputes on a
// later miss — still numerically identical, just slower). References
// returned by latent() stay valid until that entry is evicted, so a bound
// must be at least as large as the number of latents a caller holds at
// once (one incoming batch for the learners; warm() batches internally).
//
// Concurrency contract (the serving runtime shares one cache across shard
// workers): every public entry point is serialised by an internal mutex, so
// an UNBOUNDED cache is safe to use from any number of threads — entries are
// never erased, unordered_map references are stable under insertion, and a
// concurrent miss at worst recomputes the same (bit-identical) latent. A
// BOUNDED cache is single-owner: eviction invalidates references another
// thread may still hold, a hazard no lock around the call can fix. The first
// thread to touch a bounded cache becomes its owner and CHAM_CHECK rejects
// access from any other thread. The serving runtime therefore requires its
// shared cache to be unbounded (SessionManager contracts on this at
// construction).
#pragma once

#include <cstdint>
#include <list>
#include <thread>
#include <unordered_map>

#include "data/dataset.h"
#include "nn/sequential.h"
#include "util/sync.h"

namespace cham::data {

class LatentCache {
 public:
  // `f` must outlive the cache. `cfg` is the dataset the keys refer to.
  // max_entries = 0 leaves the cache unbounded (the default: benchmark
  // pools fit comfortably in host memory).
  LatentCache(const DatasetConfig& cfg, nn::Sequential& f,
              int64_t max_entries = 0)
      : cfg_(cfg), f_(f), max_entries_(max_entries) {}

  // Latent activation (1 x C x H x W) of one image; computed on miss. The
  // reference is valid until this entry is evicted (forever when
  // unbounded). Thread-safe when unbounded; single-owner when bounded (see
  // the concurrency contract above).
  const Tensor& latent(const ImageKey& key) CHAM_EXCLUDES(mu_);

  // Precompute a set of keys in batches (faster GEMMs than one-by-one).
  void warm(const std::vector<ImageKey>& keys, int64_t batch = 32)
      CHAM_EXCLUDES(mu_);

  int64_t size() const CHAM_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return static_cast<int64_t>(cache_.size());
  }
  int64_t max_entries() const { return max_entries_; }
  int64_t evictions() const CHAM_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return evictions_;
  }

 private:
  struct Entry {
    Tensor latent;
    std::list<uint64_t>::iterator lru_it;
  };

  // Inserts under the capacity bound (evicting the LRU tail first when at
  // the bound) and marks the entry most recently used.
  const Tensor& insert(uint64_t packed, Tensor z) CHAM_REQUIRES(mu_);
  void touch(Entry& e) CHAM_REQUIRES(mu_);
  // Bounded caches: CHAM_CHECK that every access comes from the owning
  // (first-touching) thread.
  void check_owner() CHAM_REQUIRES(mu_);

  DatasetConfig cfg_;      // immutable after construction
  nn::Sequential& f_;      // frozen backbone; forward() is const-safe
  int64_t max_entries_;    // immutable after construction
  int64_t evictions_ CHAM_GUARDED_BY(mu_) = 0;
  std::list<uint64_t> lru_ CHAM_GUARDED_BY(mu_);  // front = most recent
  std::unordered_map<uint64_t, Entry> cache_ CHAM_GUARDED_BY(mu_);
  mutable util::Mutex mu_;
  // Set on first access when bounded.
  std::thread::id owner_ CHAM_GUARDED_BY(mu_);
};

// Stacks per-sample latents (each 1 x C x H x W) into an N x C x H x W batch.
//
// The zero-copy replay path (gather-fused GEMM packing) made this copy
// unnecessary on the observe/predict hot paths; it survives for the
// reference oracle and cold paths. Every call bumps a process-global
// counter so bench_observe can gate on ZERO stacking copies in the steady
// state (and cham_lint statically rejects new calls inside hot_path marker
// regions).
Tensor stack_latents(const std::vector<const Tensor*>& latents);

// Process-global count of stack_latents() calls since process start.
// Monotone; relaxed atomic (a cross-thread snapshot may lag, which is fine
// for the single-threaded bench gate that consumes it).
int64_t stack_latents_calls();

}  // namespace cham::data
