#include "data/stream.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cham::data {

DomainIncrementalStream::DomainIncrementalStream(
    const DatasetConfig& data_cfg, const StreamConfig& stream_cfg) {
  Rng rng(stream_cfg.seed * 0x2545F4914F6CDD1Dull + 17);

  // Initial preferred set: random k classes; optionally redrawn per
  // half-stream to model drifting user interest.
  auto draw_preferred = [&]() {
    return rng.sample_without_replacement(data_cfg.num_classes,
                                          stream_cfg.num_preferred);
  };
  std::vector<int64_t> preferred = draw_preferred();

  const int64_t samples_per_domain =
      data_cfg.num_classes * data_cfg.train_instances;
  const int64_t drift_domain =
      stream_cfg.drift_preferences ? data_cfg.num_domains / 2 : -1;

  for (int64_t d = 0; d < data_cfg.num_domains; ++d) {
    if (d == drift_domain) preferred = draw_preferred();
    preferred_by_domain_.push_back(preferred);

    std::vector<double> class_weights(
        static_cast<size_t>(data_cfg.num_classes), 1.0);
    for (int64_t c : preferred) {
      class_weights[static_cast<size_t>(c)] = stream_cfg.preference_weight;
    }

    // Emit runs until the domain quota is filled. Instances within a class
    // are sampled with replacement (a user re-encounters the same object).
    std::vector<ImageKey> ordered;
    ordered.reserve(static_cast<size_t>(samples_per_domain));
    while (static_cast<int64_t>(ordered.size()) < samples_per_domain) {
      const int64_t cls = rng.sample_weighted(class_weights);
      const int64_t len = std::min<int64_t>(
          1 + rng.uniform_int(stream_cfg.run_length),
          samples_per_domain - static_cast<int64_t>(ordered.size()));
      for (int64_t i = 0; i < len; ++i) {
        ordered.push_back({static_cast<int32_t>(cls),
                           static_cast<int32_t>(d),
                           static_cast<int32_t>(
                               rng.uniform_int(data_cfg.train_instances)),
                           /*test=*/false});
      }
    }

    for (int64_t start = 0; start < samples_per_domain;
         start += stream_cfg.batch_size) {
      const int64_t end =
          std::min(start + stream_cfg.batch_size, samples_per_domain);
      Batch b;
      b.domain = d;
      for (int64_t i = start; i < end; ++i) {
        b.keys.push_back(ordered[static_cast<size_t>(i)]);
        b.labels.push_back(ordered[static_cast<size_t>(i)].class_id);
      }
      total_samples_ += end - start;
      batches_.push_back(std::move(b));
    }
  }
}

ClassIncrementalStream::ClassIncrementalStream(
    const DatasetConfig& data_cfg, const ClassIncrementalConfig& cfg) {
  Rng rng(cfg.seed * 0x9E3779B97F4A7C15ull + 5);

  // Random class-to-task assignment (the usual Class-IL protocol).
  std::vector<int64_t> class_order(
      static_cast<size_t>(data_cfg.num_classes));
  for (int64_t c = 0; c < data_cfg.num_classes; ++c) {
    class_order[static_cast<size_t>(c)] = c;
  }
  rng.shuffle(class_order);
  num_tasks_ = (data_cfg.num_classes + cfg.classes_per_task - 1) /
               cfg.classes_per_task;
  task_classes_.resize(static_cast<size_t>(num_tasks_));
  for (size_t i = 0; i < class_order.size(); ++i) {
    task_classes_[i / static_cast<size_t>(cfg.classes_per_task)].push_back(
        class_order[i]);
  }

  for (int64_t t = 0; t < num_tasks_; ++t) {
    const auto& classes = task_classes_[static_cast<size_t>(t)];
    const int64_t quota = static_cast<int64_t>(classes.size()) *
                          data_cfg.num_domains * data_cfg.train_instances;
    // Temporally-correlated runs over the task's classes, domains mixed.
    std::vector<ImageKey> ordered;
    ordered.reserve(static_cast<size_t>(quota));
    while (static_cast<int64_t>(ordered.size()) < quota) {
      const int64_t cls = classes[static_cast<size_t>(
          rng.uniform_int(static_cast<int64_t>(classes.size())))];
      const int64_t domain = rng.uniform_int(data_cfg.num_domains);
      const int64_t len = std::min<int64_t>(
          1 + rng.uniform_int(cfg.run_length),
          quota - static_cast<int64_t>(ordered.size()));
      for (int64_t i = 0; i < len; ++i) {
        ordered.push_back({static_cast<int32_t>(cls),
                           static_cast<int32_t>(domain),
                           static_cast<int32_t>(
                               rng.uniform_int(data_cfg.train_instances)),
                           /*test=*/false});
      }
    }
    for (int64_t start = 0; start < quota; start += cfg.batch_size) {
      const int64_t end = std::min(start + cfg.batch_size, quota);
      Batch b;
      b.domain = t;  // the "task id" plays the domain role for trackers
      for (int64_t i = start; i < end; ++i) {
        b.keys.push_back(ordered[static_cast<size_t>(i)]);
        b.labels.push_back(ordered[static_cast<size_t>(i)].class_id);
      }
      batches_.push_back(std::move(b));
    }
  }
}

std::vector<SessionEvent> make_zipf_schedule(const MultiUserConfig& cfg) {
  CHAM_CHECK(cfg.num_sessions > 0, "make_zipf_schedule: no sessions");
  CHAM_CHECK(cfg.events >= 0, "make_zipf_schedule: negative event count");
  CHAM_CHECK(cfg.predict_fraction >= 0.0 && cfg.predict_fraction <= 1.0,
             "make_zipf_schedule: predict_fraction outside [0, 1]");
  Rng rng(cfg.seed * 0x9E3779B97F4A7C15ull + 0x5EED);

  // Zipf weights over session rank (rank 0 hottest): w_r = 1 / (r+1)^s.
  std::vector<double> weights(static_cast<size_t>(cfg.num_sessions));
  for (int64_t r = 0; r < cfg.num_sessions; ++r) {
    weights[static_cast<size_t>(r)] =
        1.0 / std::pow(static_cast<double>(r + 1), cfg.zipf_s);
  }

  std::vector<SessionEvent> schedule;
  schedule.reserve(static_cast<size_t>(cfg.events));
  std::vector<int64_t> next_batch(static_cast<size_t>(cfg.num_sessions), 0);
  for (int64_t e = 0; e < cfg.events; ++e) {
    int64_t s = rng.sample_weighted(weights);
    if (s < 0) s = rng.uniform_int(cfg.num_sessions);
    // Draw the kind even when predict_fraction == 0 so enabling predicts
    // does not perturb which sessions the remaining events land on.
    const bool predict = rng.bernoulli(cfg.predict_fraction);
    auto& next = next_batch[static_cast<size_t>(s)];
    schedule.push_back({s, predict ? next : next++, predict});
  }
  return schedule;
}

namespace {

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool read_pod(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  return is.good();
}

void write_keys(std::ostream& os, const std::vector<ImageKey>& keys) {
  write_pod(os, static_cast<int64_t>(keys.size()));
  for (const auto& k : keys) {
    write_pod(os, k.class_id);
    write_pod(os, k.domain_id);
    write_pod(os, k.instance_id);
    write_pod(os, static_cast<uint8_t>(k.test));
  }
}

bool read_keys(std::istream& is, std::vector<ImageKey>& keys) {
  int64_t count = 0;
  if (!read_pod(is, count) || count < 0 || count > (int64_t{1} << 32)) {
    return false;
  }
  keys.clear();
  keys.resize(static_cast<size_t>(count));
  for (auto& k : keys) {
    uint8_t test = 0;
    if (!read_pod(is, k.class_id) || !read_pod(is, k.domain_id) ||
        !read_pod(is, k.instance_id) || !read_pod(is, test)) {
      return false;
    }
    k.test = test != 0;
  }
  return true;
}

}  // namespace

bool save_batch(const Batch& batch, std::ostream& os) {
  write_keys(os, batch.keys);
  write_pod(os, static_cast<int64_t>(batch.labels.size()));
  for (int64_t label : batch.labels) write_pod(os, label);
  write_pod(os, batch.domain);
  return os.good();
}

bool load_batch(Batch& batch, std::istream& is) {
  if (!read_keys(is, batch.keys)) return false;
  int64_t count = 0;
  if (!read_pod(is, count) || count < 0 || count > (int64_t{1} << 32)) {
    return false;
  }
  batch.labels.clear();
  batch.labels.resize(static_cast<size_t>(count));
  for (auto& label : batch.labels) {
    if (!read_pod(is, label)) return false;
  }
  return read_pod(is, batch.domain);
}

bool save_ops(const std::vector<ServeOp>& ops, std::ostream& os) {
  write_pod(os, static_cast<int64_t>(ops.size()));
  for (const auto& op : ops) {
    write_pod(os, static_cast<uint8_t>(op.predict));
    if (op.predict) {
      write_keys(os, op.keys);
    } else if (!save_batch(op.batch, os)) {
      return false;
    }
  }
  return os.good();
}

bool load_ops(std::vector<ServeOp>& ops, std::istream& is) {
  int64_t count = 0;
  if (!read_pod(is, count) || count < 0 || count > (int64_t{1} << 32)) {
    return false;
  }
  ops.clear();
  ops.resize(static_cast<size_t>(count));
  for (auto& op : ops) {
    uint8_t predict = 0;
    if (!read_pod(is, predict)) return false;
    op.predict = predict != 0;
    if (op.predict) {
      if (!read_keys(is, op.keys)) return false;
    } else if (!load_batch(op.batch, is)) {
      return false;
    }
  }
  return true;
}

}  // namespace cham::data
