// Procedural synthetic object datasets standing in for CORe50 and
// OpenLORIS-Object (see DESIGN.md substitution table).
//
// Every image is a pure function of (config, key): a class-specific pattern
// of coloured blobs and a grating, composited over a domain-specific
// background with domain lighting/colour-cast/translation and per-instance
// jitter. Classes are separable; domains shift appearance enough that a head
// trained on one domain degrades on others — the forgetting pressure that
// drives the paper's experiments. OpenLORIS uses a smaller shift strength
// (the paper attributes its higher scores to smoother transitions).
#pragma once

#include <cstdint>
#include <string>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace cham::data {

struct DatasetConfig {
  std::string name = "core50";
  int64_t num_classes = 50;
  int64_t num_domains = 11;
  int64_t image_hw = 32;
  int64_t train_instances = 6;  // per (class, domain)
  int64_t test_instances = 2;   // per (class, domain)
  float domain_shift = 1.0f;    // scales all domain transform magnitudes
  float instance_noise = 0.35f; // scales per-instance jitter
  uint64_t seed = 0xC0DE50;
};

// Configurations mirroring the paper's two benchmarks (class/domain counts
// match; instance counts are scaled down for single-core runtime and are
// overridable from benches).
DatasetConfig core50_config();
DatasetConfig openloris_config();

// Identifies one concrete image in the pool.
struct ImageKey {
  int32_t class_id = 0;
  int32_t domain_id = 0;
  int32_t instance_id = 0;
  bool test = false;

  uint64_t packed() const {
    return (uint64_t(uint32_t(class_id)) << 40) |
           (uint64_t(uint32_t(domain_id)) << 24) |
           (uint64_t(uint32_t(instance_id)) << 1) | (test ? 1u : 0u);
  }
  bool operator==(const ImageKey&) const = default;
};

// Deterministically renders the image for `key`: 3 x hw x hw in [0, 1].
Tensor synthesize_image(const DatasetConfig& cfg, const ImageKey& key);

// Renders a batch of keys into an N x 3 x hw x hw tensor.
Tensor synthesize_batch(const DatasetConfig& cfg,
                        const std::vector<ImageKey>& keys);

// All test keys of the dataset (every class x domain x test instance).
std::vector<ImageKey> all_test_keys(const DatasetConfig& cfg);

// All train keys for one domain.
std::vector<ImageKey> train_keys_for_domain(const DatasetConfig& cfg,
                                            int64_t domain);

}  // namespace cham::data
