#include "data/dataset.h"

#include <algorithm>
#include <cmath>

namespace cham::data {
namespace {

constexpr double kTau = 6.28318530717958648;

// Class appearance: a handful of soft blobs plus an oriented grating, all
// drawn from a class-seeded RNG so every class has a stable identity.
struct Blob {
  float cx, cy, sigma, r, g, b, amp;
};

struct ClassPattern {
  Blob blobs[4];
  float grating_freq, grating_angle, grating_amp;
  float base_r, base_g, base_b;
};

ClassPattern make_class_pattern(const DatasetConfig& cfg, int32_t class_id) {
  Rng rng(cfg.seed * 0x9E3779B1ull + 0x1000003 * uint64_t(class_id) + 7);
  ClassPattern p;
  for (Blob& blob : p.blobs) {
    blob.cx = rng.uniform_f(0.2f, 0.8f);
    blob.cy = rng.uniform_f(0.2f, 0.8f);
    blob.sigma = rng.uniform_f(0.08f, 0.22f);
    blob.r = rng.uniform_f(0.0f, 1.0f);
    blob.g = rng.uniform_f(0.0f, 1.0f);
    blob.b = rng.uniform_f(0.0f, 1.0f);
    blob.amp = rng.uniform_f(0.5f, 1.0f);
  }
  p.grating_freq = rng.uniform_f(2.0f, 6.0f);
  p.grating_angle = rng.uniform_f(0.0f, float(kTau));
  p.grating_amp = rng.uniform_f(0.1f, 0.3f);
  p.base_r = rng.uniform_f(0.1f, 0.4f);
  p.base_g = rng.uniform_f(0.1f, 0.4f);
  p.base_b = rng.uniform_f(0.1f, 0.4f);
  return p;
}

// Domain appearance: lighting, colour cast, background texture phase and
// a global translation — the CORe50 "session" analogue.
struct DomainTransform {
  float brightness;         // multiplicative
  float cast_r, cast_g, cast_b;
  float bg_amp, bg_fx, bg_fy, bg_phase;
  float shift_x, shift_y;   // in pixels (fraction of hw)
  float contrast;
};

DomainTransform make_domain_transform(const DatasetConfig& cfg,
                                      int32_t domain_id) {
  Rng rng(cfg.seed * 0x85EBCA6Bull + 0x7FEF7 * uint64_t(domain_id) + 13);
  const float s = cfg.domain_shift;
  DomainTransform d;
  d.brightness = 1.0f + s * rng.uniform_f(-0.35f, 0.35f);
  d.cast_r = 1.0f + s * rng.uniform_f(-0.25f, 0.25f);
  d.cast_g = 1.0f + s * rng.uniform_f(-0.25f, 0.25f);
  d.cast_b = 1.0f + s * rng.uniform_f(-0.25f, 0.25f);
  d.bg_amp = s * rng.uniform_f(0.10f, 0.30f);
  d.bg_fx = rng.uniform_f(1.0f, 4.0f);
  d.bg_fy = rng.uniform_f(1.0f, 4.0f);
  d.bg_phase = rng.uniform_f(0.0f, float(kTau));
  d.shift_x = s * rng.uniform_f(-0.12f, 0.12f);
  d.shift_y = s * rng.uniform_f(-0.12f, 0.12f);
  d.contrast = 1.0f + s * rng.uniform_f(-0.2f, 0.2f);
  return d;
}

}  // namespace

DatasetConfig core50_config() {
  DatasetConfig cfg;
  cfg.name = "core50";
  cfg.num_classes = 50;
  cfg.num_domains = 11;
  cfg.domain_shift = 0.8f;
  cfg.train_instances = 3;
  cfg.test_instances = 2;
  cfg.seed = 0xC0DE50;
  return cfg;
}

DatasetConfig openloris_config() {
  DatasetConfig cfg;
  cfg.name = "openloris";
  cfg.num_classes = 69;
  cfg.num_domains = 12;
  // Smoother domain transitions + more data per class (paper Sec. IV-B).
  cfg.domain_shift = 0.45f;
  cfg.train_instances = 3;
  cfg.test_instances = 1;
  cfg.seed = 0x10FC15;
  return cfg;
}

Tensor synthesize_image(const DatasetConfig& cfg, const ImageKey& key) {
  const int64_t hw = cfg.image_hw;
  const ClassPattern cp = make_class_pattern(cfg, key.class_id);
  const DomainTransform dt = make_domain_transform(cfg, key.domain_id);

  // Per-instance jitter (different for train vs test instances).
  Rng jrng(cfg.seed * 0xC2B2AE35ull + key.packed() * 0x27D4EB2Full + 29);
  const float jx = cfg.instance_noise * jrng.uniform_f(-0.08f, 0.08f);
  const float jy = cfg.instance_noise * jrng.uniform_f(-0.08f, 0.08f);
  const float jamp = 1.0f + cfg.instance_noise * jrng.uniform_f(-0.25f, 0.25f);
  const float noise_sigma = 0.02f + 0.05f * cfg.instance_noise;

  Tensor img({3, hw, hw});
  const float ca = std::cos(cp.grating_angle), sa = std::sin(cp.grating_angle);
  for (int64_t y = 0; y < hw; ++y) {
    for (int64_t x = 0; x < hw; ++x) {
      // Object-space coordinates with domain + instance translation.
      const float u = float(x) / hw - dt.shift_x - jx;
      const float v = float(y) / hw - dt.shift_y - jy;

      // Background texture (domain identity).
      const float bg =
          dt.bg_amp * std::sin(float(kTau) * (dt.bg_fx * u + dt.bg_fy * v) +
                               dt.bg_phase);

      // Class grating.
      const float grat =
          cp.grating_amp *
          std::sin(float(kTau) * cp.grating_freq * (ca * u + sa * v));

      float r = cp.base_r + bg + grat;
      float g = cp.base_g + bg + grat;
      float b = cp.base_b + bg + grat;

      for (const Blob& blob : cp.blobs) {
        const float dx = u - blob.cx, dy = v - blob.cy;
        const float w =
            jamp * blob.amp *
            std::exp(-(dx * dx + dy * dy) / (2.0f * blob.sigma * blob.sigma));
        r += w * blob.r;
        g += w * blob.g;
        b += w * blob.b;
      }

      // Domain lighting: contrast about mid-grey, colour cast, brightness.
      auto light = [&](float c, float cast) {
        c = 0.5f + dt.contrast * (c - 0.5f);
        return c * dt.brightness * cast;
      };
      r = light(r, dt.cast_r);
      g = light(g, dt.cast_g);
      b = light(b, dt.cast_b);

      // Sensor noise.
      r += jrng.normal_f(0.0f, noise_sigma);
      g += jrng.normal_f(0.0f, noise_sigma);
      b += jrng.normal_f(0.0f, noise_sigma);

      img[(0 * hw + y) * hw + x] = std::clamp(r, 0.0f, 1.0f);
      img[(1 * hw + y) * hw + x] = std::clamp(g, 0.0f, 1.0f);
      img[(2 * hw + y) * hw + x] = std::clamp(b, 0.0f, 1.0f);
    }
  }
  return img;
}

Tensor synthesize_batch(const DatasetConfig& cfg,
                        const std::vector<ImageKey>& keys) {
  const int64_t hw = cfg.image_hw;
  Tensor batch({static_cast<int64_t>(keys.size()), 3, hw, hw});
  for (size_t i = 0; i < keys.size(); ++i) {
    const Tensor img = synthesize_image(cfg, keys[i]);
    std::copy(img.data(), img.data() + img.numel(),
              batch.data() + static_cast<int64_t>(i) * img.numel());
  }
  return batch;
}

std::vector<ImageKey> all_test_keys(const DatasetConfig& cfg) {
  std::vector<ImageKey> keys;
  keys.reserve(static_cast<size_t>(cfg.num_classes * cfg.num_domains *
                                   cfg.test_instances));
  for (int32_t c = 0; c < cfg.num_classes; ++c) {
    for (int32_t d = 0; d < cfg.num_domains; ++d) {
      for (int32_t i = 0; i < cfg.test_instances; ++i) {
        keys.push_back({c, d, i, /*test=*/true});
      }
    }
  }
  return keys;
}

std::vector<ImageKey> train_keys_for_domain(const DatasetConfig& cfg,
                                            int64_t domain) {
  std::vector<ImageKey> keys;
  keys.reserve(static_cast<size_t>(cfg.num_classes * cfg.train_instances));
  for (int32_t c = 0; c < cfg.num_classes; ++c) {
    for (int32_t i = 0; i < cfg.train_instances; ++i) {
      keys.push_back({c, static_cast<int32_t>(domain), i, /*test=*/false});
    }
  }
  return keys;
}

}  // namespace cham::data
