#include "data/augment.h"

#include <algorithm>

#include "util/check.h"

namespace cham::data {
namespace {

// CHW geometry helper (accepts rank-3 CHW or rank-4 with leading 1).
struct Chw {
  int64_t c, h, w, offset;
};

Chw geometry(const Tensor& t) {
  if (t.rank() == 3) return {t.dim(0), t.dim(1), t.dim(2), 0};
  CHAM_CHECK(t.rank() == 4 && t.dim(0) == 1,
             "augment input " + t.shape().to_string() + " is not CxHxW or 1xCxHxW");
  return {t.dim(1), t.dim(2), t.dim(3), 0};
}

}  // namespace

Tensor hflip(const Tensor& chw) {
  const Chw g = geometry(chw);
  Tensor out(chw.shape());
  for (int64_t c = 0; c < g.c; ++c) {
    for (int64_t y = 0; y < g.h; ++y) {
      const float* src = chw.data() + (c * g.h + y) * g.w;
      float* dst = out.data() + (c * g.h + y) * g.w;
      for (int64_t x = 0; x < g.w; ++x) dst[x] = src[g.w - 1 - x];
    }
  }
  return out;
}

Tensor shift(const Tensor& chw, int64_t dx, int64_t dy) {
  const Chw g = geometry(chw);
  Tensor out(chw.shape());
  for (int64_t c = 0; c < g.c; ++c) {
    for (int64_t y = 0; y < g.h; ++y) {
      const int64_t sy = std::clamp<int64_t>(y - dy, 0, g.h - 1);
      const float* src = chw.data() + (c * g.h + sy) * g.w;
      float* dst = out.data() + (c * g.h + y) * g.w;
      for (int64_t x = 0; x < g.w; ++x) {
        const int64_t sx = std::clamp<int64_t>(x - dx, 0, g.w - 1);
        dst[x] = src[sx];
      }
    }
  }
  return out;
}

Tensor color_jitter(const Tensor& chw, float brightness, float contrast) {
  Tensor out = chw;
  for (int64_t i = 0; i < out.numel(); ++i) {
    const float v = 0.5f + contrast * (out[i] - 0.5f);
    out[i] = std::clamp(v * brightness, 0.0f, 1.0f);
  }
  return out;
}

Tensor augment(const Tensor& chw, const AugmentConfig& cfg, Rng& rng) {
  Tensor img = chw;
  if (cfg.hflip && rng.bernoulli(0.5)) img = hflip(img);
  if (cfg.max_shift_px > 0) {
    const int64_t dx =
        rng.uniform_int(2 * cfg.max_shift_px + 1) - cfg.max_shift_px;
    const int64_t dy =
        rng.uniform_int(2 * cfg.max_shift_px + 1) - cfg.max_shift_px;
    if (dx != 0 || dy != 0) img = shift(img, dx, dy);
  }
  if (cfg.brightness > 0 || cfg.contrast > 0) {
    img = color_jitter(img,
                       1.0f + rng.uniform_f(-cfg.brightness, cfg.brightness),
                       1.0f + rng.uniform_f(-cfg.contrast, cfg.contrast));
  }
  if (cfg.noise_sigma > 0) {
    for (int64_t i = 0; i < img.numel(); ++i) {
      img[i] = std::clamp(img[i] + rng.normal_f(0.0f, cfg.noise_sigma),
                          0.0f, 1.0f);
    }
  }
  return img;
}

Tensor augment_batch(const Tensor& nchw, const AugmentConfig& cfg, Rng& rng) {
  CHAM_CHECK(nchw.rank() == 4, "batch " + nchw.shape().to_string() + " is not NCHW");
  Tensor out(nchw.shape());
  const int64_t per = nchw.numel() / nchw.dim(0);
  for (int64_t n = 0; n < nchw.dim(0); ++n) {
    Tensor img({nchw.dim(1), nchw.dim(2), nchw.dim(3)});
    std::copy(nchw.data() + n * per, nchw.data() + (n + 1) * per, img.data());
    const Tensor aug = augment(img, cfg, rng);
    std::copy(aug.data(), aug.data() + per, out.data() + n * per);
  }
  return out;
}

}  // namespace cham::data
