#include "hw/device.h"

#include <algorithm>

#include "hw/energy_tables.h"

namespace cham::hw {

DeviceProfile jetson_nano() {
  DeviceProfile d;
  d.name = "Jetson Nano";
  // 128-core Maxwell, 472 GFLOPS fp16 peak; small-batch training kernels
  // reach a modest fraction of peak.
  d.mac_throughput = 30e9;
  // cuSOLVER-style dense inverse at d~hundreds: latency-bound.
  d.linalg_throughput = 12e9;
  d.dram_bw = 12e9;  // LPDDR4 25.6 GB/s theoretical, ~half usable
  d.sram_bw = 12e9;  // paper: could not pin the L2 for replay -> DRAM speed
  d.has_onchip_buffer = false;
  d.mac_pj = 15.0;  // GPU system-level energy per MAC (datapath+reg+sched)
  d.sram_pj_per_byte = EnergyTable45nm::dram_pj_per_byte;  // serviced by DRAM
  d.dram_pj_per_byte = EnergyTable45nm::dram_pj_per_byte;
  d.static_power_w = 5.0;
  // Small-batch training kernels on unified memory serialise with the
  // replay transfers (no room to double-buffer a 48 MB replay working set
  // through the unpinnable L2), so an off-chip-fed pipeline stalls — the
  // paper's 3.5x Latent Replay gap despite equal MAC counts.
  d.overlap_compute_mem = false;
  d.dma_setup_s = 2e-6;  // unified memory, cheap descriptors
  return d;
}

DeviceProfile zcu102_fpga() {
  DeviceProfile d;
  d.name = "ZCU102 FPGA";
  // 24x24 fp16 MAC array @ 150 MHz (see fpga_model.h) with training-mode
  // efficiency losses: ~10 GMAC/s achieved.
  d.mac_throughput = 10e9;
  d.linalg_throughput = 0.2e9;  // no dedicated solver datapath
  // AXI DMA to PS DRAM: modest sustained bandwidth for small transfers.
  d.dram_bw = 100e6;
  d.sram_bw = 86.4e9;  // BRAM: full array bandwidth
  d.has_onchip_buffer = true;
  d.onchip_capacity_bytes = int64_t{2844} * 1024;  // see fpga_model.h
  d.mac_pj = EnergyTable45nm::fp16_mac_pj * 2.0;   // FPGA fabric overhead
  d.sram_pj_per_byte = EnergyTable45nm::sram_pj_per_byte;
  d.dram_pj_per_byte = EnergyTable45nm::dram_pj_per_byte;
  d.static_power_w = 2.5;
  // The Vitis accelerator serialises kernel execution and replay DMA; the
  // paper measures 44% of Latent Replay's latency in latent data movement.
  d.overlap_compute_mem = false;
  d.dma_setup_s = 250e-6;  // per-descriptor driver + interrupt overhead
  return d;
}

DeviceProfile edgetpu(const SystolicConfig& array) {
  DeviceProfile d;
  d.name = "EdgeTPU";
  SystolicArraySim sim(array);
  // Achieved throughput for MobileNet-shaped GEMMs: utilisation is derived
  // from the systolic timing model on a representative conv layer (K=256,
  // N=256 output pixels, M=64) rather than assumed.
  const SystolicRun rep = sim.gemm(/*m=*/64, /*k=*/256, /*n=*/256);
  d.mac_throughput = rep.utilization * array.rows * array.cols *
                     array.freq_hz;
  // Dense pivoted inverse on a systolic array: see
  // SystolicArraySim::matrix_inverse — sequential eliminations leave the
  // array almost idle.
  const SystolicRun inv = sim.matrix_inverse(256);
  d.linalg_throughput = inv.macs / inv.seconds(array);
  d.dram_bw = 4e9;
  d.sram_bw = 64e9;
  d.has_onchip_buffer = true;
  d.onchip_capacity_bytes = 8 << 20;  // paper: 8 MB on-chip SRAM
  d.mac_pj = EnergyTable45nm::int8_mac_pj * 4.0;  // BFP datapath
  d.sram_pj_per_byte = EnergyTable45nm::sram_pj_per_byte;
  d.dram_pj_per_byte = EnergyTable45nm::dram_pj_per_byte;
  d.static_power_w = 2.0;
  d.overlap_compute_mem = true;
  d.dma_setup_s = 10e-6;
  return d;
}

CostResult estimate_cost(const core::OpStats& stats, const DeviceProfile& dev,
                         double offchip_transactions_per_image) {
  CostResult out;
  if (stats.images == 0) return out;
  const double imgs = static_cast<double>(stats.images);

  const double macs =
      (stats.f_fwd_macs + stats.g_fwd_macs + stats.g_bwd_macs) / imgs;
  const double linalg_flops = stats.extra_flops / imgs;
  // Trainable-head weights live in the on-chip weight buffer on devices
  // that have one (the ZCU102 design reserves 1408 KiB for exactly this;
  // the EdgeTPU has 8 MB of SRAM); only the Jetson streams them from DRAM.
  const double weights = stats.weight_bytes / imgs;
  const double onchip =
      stats.onchip_bytes / imgs + (dev.has_onchip_buffer ? weights : 0.0);
  const double offchip =
      stats.offchip_bytes / imgs + (dev.has_onchip_buffer ? 0.0 : weights);

  // Pipeline-stall derating: when training samples stream from the off-chip
  // buffer, each forward pass waits on its DMA (no double-buffering room),
  // so only a fraction of the MAC throughput is realised. The derate scales
  // with the off-chip share of replay traffic.
  double throughput = dev.mac_throughput;
  if (!dev.overlap_compute_mem) {
    // Pipeline-stall derating. Per-sample RANDOM access to an off-chip
    // buffer cannot be prefetched (the unified buffer exceeds on-chip
    // staging room), so each replayed sample's forward pass waits on its
    // DMA: a fully off-chip-fed pipeline retains only kStallFloor of its
    // throughput. Periodic burst access (Chameleon's LT, one transaction
    // every h batches) double-buffers into the staging BRAM and does not
    // stall. The transaction rate distinguishes the two: ~1 transaction
    // per replayed sample means random access.
    constexpr double kStallFloor = 0.26;
    constexpr double kReplaySamplesPerImage = 10.0;
    const double random_access_share = std::min(
        1.0, offchip_transactions_per_image / kReplaySamplesPerImage);
    throughput *= 1.0 - random_access_share * (1.0 - kStallFloor);
  }

  out.compute_ms =
      (macs / throughput + linalg_flops / dev.linalg_throughput) * 1e3;

  const double onchip_bw = dev.has_onchip_buffer ? dev.sram_bw : dev.dram_bw;
  out.memory_ms = (onchip / onchip_bw + offchip / dev.dram_bw +
                   offchip_transactions_per_image * dev.dma_setup_s) *
                  1e3;

  out.latency_ms = dev.overlap_compute_mem
                       ? std::max(out.compute_ms, out.memory_ms)
                       : out.compute_ms + out.memory_ms;
  out.mem_fraction =
      out.latency_ms > 0 ? out.memory_ms / (out.compute_ms + out.memory_ms)
                         : 0.0;

  const double onchip_pj =
      dev.has_onchip_buffer ? dev.sram_pj_per_byte : dev.dram_pj_per_byte;
  out.compute_j = (macs + linalg_flops / 2.0) * dev.mac_pj * 1e-12;
  out.memory_j = onchip * onchip_pj * 1e-12 +
                 offchip * dev.dram_pj_per_byte * 1e-12;
  out.static_j = dev.static_power_w * out.latency_ms * 1e-3;
  out.energy_j = out.compute_j + out.memory_j + out.static_j;
  return out;
}

}  // namespace cham::hw
