// Technology energy constants (Horowitz, "Computing's energy problem",
// ISSCC 2014 / the Stanford VLSI 45nm energy table the paper cites as [12]).
//
// All values in picojoules. These anchor the per-device energy models; each
// DeviceProfile scales them for its own process/voltage point.
#pragma once

namespace cham::hw {

// 45nm, 0.9V reference numbers.
struct EnergyTable45nm {
  // Arithmetic, per operation.
  static constexpr double fp16_mac_pj = 1.50;   // 0.4 add + 1.1 mul
  static constexpr double fp32_mac_pj = 4.60;   // 0.9 add + 3.7 mul
  static constexpr double int8_mac_pj = 0.23;   // 0.03 add + 0.2 mul

  // Memory, per 32-bit access.
  static constexpr double sram_8kb_pj = 10.0;
  static constexpr double sram_32kb_pj = 20.0;
  static constexpr double sram_1mb_pj = 100.0;
  static constexpr double dram_pj = 1300.0;     // LPDDR access + I/O

  // Convenience per-byte figures.
  static constexpr double sram_pj_per_byte = sram_32kb_pj / 4.0;
  static constexpr double dram_pj_per_byte = dram_pj / 4.0;
};

}  // namespace cham::hw
