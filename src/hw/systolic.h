// Weight-stationary systolic-array timing model (uSystolic-style, the
// simulator the paper uses for its EdgeTPU results).
//
// A GEMM of M (batch/pixels) x K (reduction) x N (output features) is tiled
// over an R x C physical array: K maps to rows, N to columns. Each tile pays
// an R-cycle weight-fill, streams M activation vectors through the array,
// and drains the C-deep output pipeline. Utilisation < 1 whenever K or N is
// not a multiple of the array dimensions — exactly why small head layers and
// dense linear algebra run poorly on big arrays.
#pragma once

#include <cstdint>

namespace cham::hw {

struct SystolicConfig {
  int64_t rows = 64;        // PE rows (reduction dimension)
  int64_t cols = 64;        // PE columns (output dimension)
  double freq_hz = 400e6;   // paper: 400 MHz, (64,64) PE array
};

struct SystolicRun {
  int64_t cycles = 0;
  double macs = 0;
  double utilization = 0;  // achieved MACs / (cycles * R * C)
  double seconds(const SystolicConfig& cfg) const {
    return static_cast<double>(cycles) / cfg.freq_hz;
  }
};

class SystolicArraySim {
 public:
  explicit SystolicArraySim(SystolicConfig cfg) : cfg_(cfg) {}
  const SystolicConfig& config() const { return cfg_; }

  // Output-stationary dataflow: each PE accumulates one C element; tiles of
  // (R x C) outputs stream K operand pairs. Fill/drain is K-long per tile
  // (vs per-tile weight reload in weight-stationary), so OS wins when K is
  // large relative to M and loses on tall-skinny problems — the classic
  // dataflow trade-off (uSystolic's subject of study).
  SystolicRun gemm_output_stationary(int64_t m, int64_t k, int64_t n) const {
    SystolicRun run;
    if (m <= 0 || k <= 0 || n <= 0) return run;
    const int64_t tiles_m = ceil_div(m, cfg_.rows);
    const int64_t tiles_n = ceil_div(n, cfg_.cols);
    const int64_t per_tile = k + cfg_.rows + cfg_.cols;  // stream + drain
    run.cycles = tiles_m * tiles_n * per_tile;
    run.macs = static_cast<double>(m) * k * n;
    run.utilization =
        run.macs / (static_cast<double>(run.cycles) * cfg_.rows * cfg_.cols);
    return run;
  }

  // Cycle count for one dense GEMM (M x K) @ (K x N), weight-stationary
  // (the TPU/EdgeTPU dataflow; the default everywhere in this repo).
  SystolicRun gemm(int64_t m, int64_t k, int64_t n) const {
    SystolicRun run;
    if (m <= 0 || k <= 0 || n <= 0) return run;
    const int64_t tiles_k = ceil_div(k, cfg_.rows);
    const int64_t tiles_n = ceil_div(n, cfg_.cols);
    // Per tile: weight fill (rows), M activation waves, pipeline drain.
    const int64_t per_tile = cfg_.rows + m + cfg_.cols;
    run.cycles = tiles_k * tiles_n * per_tile;
    run.macs = static_cast<double>(m) * k * n;
    run.utilization =
        run.macs / (static_cast<double>(run.cycles) * cfg_.rows * cfg_.cols);
    return run;
  }

  // Sequential-dependency dense solve (Gauss-Jordan inverse of d x d):
  // row eliminations are serial in d, each row op is a d x d rank-1 update
  // that maps to a single array row pass. This is the O(d^3)-with-poor-
  // parallelism behaviour that makes SLDA slow on the EdgeTPU (paper
  // Sec. IV-C).
  SystolicRun matrix_inverse(int64_t d) const {
    SystolicRun run;
    if (d <= 0) return run;
    const int64_t tiles_n = ceil_div(d, cfg_.cols);
    // d pivot steps; each updates d rows, a row is a tiled vector pass with
    // pipeline fill, and pivot selection serialises between steps.
    run.cycles = d * (d * tiles_n * (cfg_.cols + 1) + cfg_.rows);
    run.macs = 2.0 * static_cast<double>(d) * d * d;
    run.utilization =
        run.macs / (static_cast<double>(run.cycles) * cfg_.rows * cfg_.cols);
    return run;
  }

  SystolicRun accumulate(const SystolicRun& a, const SystolicRun& b) const {
    SystolicRun out;
    out.cycles = a.cycles + b.cycles;
    out.macs = a.macs + b.macs;
    out.utilization =
        out.cycles > 0
            ? out.macs / (static_cast<double>(out.cycles) * cfg_.rows *
                          cfg_.cols)
            : 0.0;
    return out;
  }

 private:
  static int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }
  SystolicConfig cfg_;
};

}  // namespace cham::hw
