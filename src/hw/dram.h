// Bank/row-aware DRAM timing model.
//
// The flat bytes/bandwidth figure in DeviceProfile hides the access-pattern
// effect the paper's dual-buffer design exploits: per-sample RANDOM reads
// from a large unified replay buffer hit closed rows (activate + CAS per
// burst), while Chameleon's periodic LT fetch streams a contiguous block
// (one activate, then back-to-back bursts). This model prices the two
// patterns from first principles and is used to justify DeviceProfile's
// effective-bandwidth and stall calibration (test_dram checks the paper's
// 44%-of-latency data-movement regime is reachable).
#pragma once

#include <cstdint>

namespace cham::hw {

struct DramTiming {
  // LPDDR4-style defaults, in nanoseconds.
  double t_rcd = 18.0;   // activate -> column command
  double t_cas = 18.0;   // column command -> data
  double t_rp = 18.0;    // precharge
  double burst_bytes = 32.0;   // bytes transferred per burst
  double t_burst = 5.0;        // data transfer time per burst
  int64_t row_bytes = 2048;    // row buffer size
  double energy_activate_pj = 900.0;
  double energy_burst_pj = 150.0;
};

struct DramAccessCost {
  double time_ns = 0;
  double energy_pj = 0;
  int64_t activates = 0;
  int64_t bursts = 0;
};

// A fully sequential (streaming) read/write of `bytes`: one activate per
// row, pipelined bursts within the row.
inline DramAccessCost stream_access(const DramTiming& t, int64_t bytes) {
  DramAccessCost c;
  if (bytes <= 0) return c;
  c.bursts = static_cast<int64_t>(
      (bytes + static_cast<int64_t>(t.burst_bytes) - 1) /
      static_cast<int64_t>(t.burst_bytes));
  c.activates = (bytes + t.row_bytes - 1) / t.row_bytes;
  c.time_ns = static_cast<double>(c.activates) * (t.t_rcd + t.t_rp) +
              t.t_cas + static_cast<double>(c.bursts) * t.t_burst;
  c.energy_pj = static_cast<double>(c.activates) * t.energy_activate_pj +
                static_cast<double>(c.bursts) * t.energy_burst_pj;
  return c;
}

// `count` independent random reads of `object_bytes` each: every object
// lands in a closed row (activate + precharge per object), no pipelining
// across objects.
inline DramAccessCost random_access(const DramTiming& t, int64_t count,
                                    int64_t object_bytes) {
  DramAccessCost c;
  if (count <= 0 || object_bytes <= 0) return c;
  const DramAccessCost one = stream_access(t, object_bytes);
  c.time_ns = static_cast<double>(count) * (one.time_ns + t.t_rp);
  c.energy_pj = static_cast<double>(count) * one.energy_pj;
  c.activates = count * one.activates;
  c.bursts = count * one.bursts;
  return c;
}

// Effective bandwidth (bytes/s) of an access pattern.
inline double effective_bandwidth(const DramAccessCost& c, int64_t bytes) {
  return c.time_ns > 0 ? static_cast<double>(bytes) / (c.time_ns * 1e-9)
                       : 0.0;
}

}  // namespace cham::hw
