// FPGA resource model for the Chameleon training accelerator on the Xilinx
// Zynq UltraScale+ ZCU102 (paper Sec. IV-C, Table III).
//
// The estimator maps an accelerator configuration — fp16 MAC array, on-chip
// weight / activation / short-term-replay buffers, DMA engines — onto the
// ZCU102's DSP48E2 slices, BRAM36 blocks and LUTs. The default configuration
// is the design point of the paper's implementation (Vivado 2021.2,
// 150 MHz): a 24x24 fp16 array with a 320 KB short-term replay store.
#pragma once

#include <cstdint>

namespace cham::hw {

struct FpgaAcceleratorConfig {
  // Compute array.
  int64_t pe_rows = 24;
  int64_t pe_cols = 24;
  int64_t dsp_per_mac = 2;  // fp16 multiply-add on DSP48E2 pairs

  // On-chip buffers (KiB).
  int64_t weight_buffer_kib = 1408;
  int64_t activation_buffer_kib = 640;
  int64_t st_replay_buffer_kib = 320;  // 10 latents of 32 KiB
  int64_t misc_buffer_kib = 474;       // im2col line buffers, instructions

  // Control / datapath LUT costs.
  int64_t lut_per_pe = 250;       // accumulator align + operand regs
  int64_t lut_control = 20000;    // scheduler, AXI-lite, loss unit
  int64_t lut_dma = 5428;         // two AXI DMA engines
  int64_t dsp_misc = 12;          // address generation, loss gradient
  double freq_mhz = 150.0;
};

struct FpgaDevice {
  int64_t dsp_available = 2520;
  int64_t bram_available = 656;     // BRAM36 blocks
  int64_t lut_available = 233707;  // paper Table III "Available" row
};

struct FpgaResources {
  int64_t dsp = 0;
  int64_t bram = 0;
  int64_t luts = 0;
  double dsp_pct = 0, bram_pct = 0, lut_pct = 0;
  bool fits = false;
};

inline FpgaResources estimate_fpga_resources(
    const FpgaAcceleratorConfig& cfg, const FpgaDevice& dev = {}) {
  FpgaResources r;
  r.dsp = cfg.pe_rows * cfg.pe_cols * cfg.dsp_per_mac + cfg.dsp_misc;
  const int64_t total_kib = cfg.weight_buffer_kib + cfg.activation_buffer_kib +
                            cfg.st_replay_buffer_kib + cfg.misc_buffer_kib;
  // One BRAM36 block stores 36 Kib = 4.5 KiB.
  r.bram = (total_kib * 2 + 8) / 9;  // ceil(total_kib / 4.5)
  r.luts = cfg.pe_rows * cfg.pe_cols * cfg.lut_per_pe + cfg.lut_control +
           cfg.lut_dma;
  r.dsp_pct = 100.0 * static_cast<double>(r.dsp) / dev.dsp_available;
  r.bram_pct = 100.0 * static_cast<double>(r.bram) / dev.bram_available;
  r.lut_pct = 100.0 * static_cast<double>(r.luts) / dev.lut_available;
  r.fits = r.dsp <= dev.dsp_available && r.bram <= dev.bram_available &&
           r.luts <= dev.lut_available;
  return r;
}

}  // namespace cham::hw
