// Edge-device profiles and the analytic latency/energy cost model that turns
// a learner's OpStats trace into the paper's Table II numbers.
//
// latency/image = compute time (MACs at the device's achieved throughput,
//                 plus poorly-parallel dense-linalg FLOPs at a degraded
//                 throughput) and memory time (replay traffic over the
//                 on-chip and off-chip ports). Devices that overlap compute
//                 with DMA take max(compute, memory); the FPGA accelerator
//                 (like the paper's, which attributes 44% of Latent Replay
//                 latency to latent data movement) serialises them.
// energy/image  = MAC energy + SRAM/DRAM traffic energy + static power x
//                 latency.
#pragma once

#include <string>

#include "core/op_stats.h"
#include "hw/systolic.h"

namespace cham::hw {

struct DeviceProfile {
  std::string name;

  // Compute.
  double mac_throughput = 1e9;     // achieved MAC/s for DNN kernels
  double linalg_throughput = 1e8;  // achieved FLOP/s for dense solves
                                   // (pivoting serialises; see systolic.h)

  // Memory ports.
  double dram_bw = 4e9;    // bytes/s usable for replay traffic
  double sram_bw = 64e9;   // bytes/s on-chip

  // Whether a replay buffer can live on-chip at all. The Jetson GPU cannot
  // pin the L2 for this (paper Sec. IV-C), so its "on-chip" traffic is
  // serviced by DRAM.
  bool has_onchip_buffer = true;
  int64_t onchip_capacity_bytes = 8 << 20;

  // Energy.
  double mac_pj = 1.5;
  double sram_pj_per_byte = 5.0;
  double dram_pj_per_byte = 325.0;
  double static_power_w = 0.5;

  // Compute/DMA overlap.
  bool overlap_compute_mem = true;

  // Per off-chip transaction overhead (DMA descriptor setup etc.); charged
  // once per replayed sample.
  double dma_setup_s = 0.0;
};

// The three devices of Table II.
DeviceProfile jetson_nano();
DeviceProfile zcu102_fpga();
DeviceProfile edgetpu(const SystolicConfig& array = {});

struct CostResult {
  double latency_ms = 0;  // per image
  double energy_j = 0;    // per image
  double compute_ms = 0;
  double memory_ms = 0;
  double mem_fraction = 0;  // share of serialised latency in data movement
  // Energy breakdown (sums to energy_j).
  double compute_j = 0;  // MAC + dense-linalg switching energy
  double memory_j = 0;   // SRAM + DRAM access energy
  double static_j = 0;   // leakage/idle power x latency
};

// Per-image latency/energy for a learner trace on a device. The trace's
// per-image averages are used, so run the learner over a representative
// stream first. `offchip_transactions_per_image` models DMA setup cost
// (defaults to bytes/typical-latent heuristics inside).
CostResult estimate_cost(const core::OpStats& stats,
                         const DeviceProfile& dev,
                         double offchip_transactions_per_image = 0.0);

}  // namespace cham::hw
